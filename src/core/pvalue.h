#ifndef VDRIFT_CORE_PVALUE_H_
#define VDRIFT_CORE_PVALUE_H_

#include <vector>

#include "stats/rng.h"

namespace vdrift::conformal {

/// Smoothed conformal p-value of a new observation with score `a_f`
/// against the precomputed reference scores (paper Eq. 1 / Alg. 1 lines
/// 4-9, with the test score included in its own comparison set):
///
///   p = ( #{ A_i > a_f }  +  U * (#{ A_i = a_f } + 1) ) / (n + 1)
///
/// with U uniform in (0,1] breaking ties randomly. The "+1" terms count
/// the test score as tied with itself, so p is strictly positive even
/// when a_f exceeds every reference score — without them p = 0 there,
/// and the power betting function b(p) = eps * p^(eps-1) would feed an
/// unbounded increment into the conformal martingale. Under
/// exchangeability p is uniform on (0,1]; a *small* p means the
/// observation is strange (its non-conformity exceeds most of the
/// reference sample). `sorted_scores` must be ascending. Guarantees
/// p in (0, 1] on every input.
double ComputePValue(double a_f, const std::vector<double>& sorted_scores,
                     stats::Rng* rng);

}  // namespace vdrift::conformal

#endif  // VDRIFT_CORE_PVALUE_H_
