#ifndef VDRIFT_CORE_PVALUE_H_
#define VDRIFT_CORE_PVALUE_H_

#include <vector>

#include "stats/rng.h"

namespace vdrift::conformal {

/// Conformal p-value of a new observation with score `a_f` against the
/// precomputed reference scores (paper Eq. 1 / Alg. 1 lines 4-9):
///
///   p = ( #{ A_i > a_f }  +  U * #{ A_i = a_f } ) / n
///
/// with U uniform in [0,1) breaking ties randomly. A *small* p means the
/// observation is strange (its non-conformity exceeds most of the
/// reference sample). `sorted_scores` must be ascending.
double ComputePValue(double a_f, const std::vector<double>& sorted_scores,
                     stats::Rng* rng);

}  // namespace vdrift::conformal

#endif  // VDRIFT_CORE_PVALUE_H_
