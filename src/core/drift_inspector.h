#ifndef VDRIFT_CORE_DRIFT_INSPECTOR_H_
#define VDRIFT_CORE_DRIFT_INSPECTOR_H_

#include <cstdint>
#include <memory>

#include "common/result.h"
#include "core/betting.h"
#include "core/martingale.h"
#include "core/profile.h"
#include "core/pvalue.h"
#include "core/threshold.h"
#include "obs/episode_trace.h"
#include "stats/rng.h"
#include "tensor/tensor.h"

namespace vdrift::conformal {

/// \brief Hyperparameters of the Drift Inspector (paper Table 1: W, r, K).
struct DriftInspectorConfig {
  int window = 3;      ///< W — observation window of the rate test.
  double r = 0.5;      ///< Significance level of the drift test.
  ThresholdPolicy threshold = ThresholdPolicy::kPaper;
  /// Betting function; null selects the library default (power-log 0.5).
  std::shared_ptr<const BettingFunction> betting;
};

/// \brief The Drift Inspector (Algorithm 1).
///
/// Monitors a stream against one DistributionProfile: each frame is
/// encoded by the profile's VAE, scored by K-NN average distance against
/// Sigma_Ti, converted to a conformal p-value (Eq. 1), and folded into the
/// conformal martingale; a drift is declared when the martingale's
/// windowed rate of change exceeds the threshold (Eq. 15). K is carried by
/// the profile's PointSet (it was fixed when A_i was precomputed).
class DriftInspector {
 public:
  /// `profile` must outlive the inspector.
  DriftInspector(const DistributionProfile* profile,
                 const DriftInspectorConfig& config, uint64_t seed = 1234);

  /// Per-frame output of Algorithm 1.
  struct Observation {
    double nonconformity = 0.0;  ///< a_f.
    double p_value = 0.0;        ///< Eq. 1.
    double bet = 0.0;            ///< Betting-function increment b(p).
    double martingale = 0.0;     ///< S[iter].
    double window_delta = 0.0;   ///< |S[iter] - S[iter-window]|.
    bool drift = false;
  };

  /// Processes one frame ([C, H, W] pixels). Aborts on non-finite scores;
  /// callers holding untrusted stream data use TryObserve instead.
  Observation Observe(const tensor::Tensor& pixels);

  /// Processes an already-encoded latent vector. Lets callers that share
  /// one encoding across detectors (MSBI runs m inspectors over the same
  /// window) avoid redundant VAE passes — only valid when the latent came
  /// from *this profile's* VAE.
  Observation ObserveLatent(std::span<const float> latent);

  /// Status-guarded Observe for untrusted frames: a NaN/Inf pixel makes
  /// the non-conformity score non-finite, which is rejected with
  /// kInvalidArgument *before* touching the martingale (the inspector's
  /// state, including its RNG, is left exactly as it was, so a rejected
  /// frame is invisible to the detection trajectory). Rejections bump the
  /// `vdrift.di.nonfinite_rejected` counter.
  Result<Observation> TryObserve(const tensor::Tensor& pixels);

  /// TryObserve for an already-encoded latent.
  Result<Observation> TryObserveLatent(std::span<const float> latent);

  /// Frames processed since construction or the last Reset.
  int64_t frames_seen() const { return frames_seen_; }

  /// The martingale's current value.
  double martingale_value() const { return martingale_.value(); }

  /// The decision threshold tau(W, r).
  double threshold() const { return martingale_.threshold(); }

  /// The monitored profile.
  const DistributionProfile& profile() const { return *profile_; }

  /// Clears the martingale state (after a drift has been handled).
  void Reset();

  /// \brief Complete serializable detector state (checkpointing): the
  /// martingale trajectory plus the RNG that drives sampled encoding and
  /// p-value tie-breaks. The monitored profile is NOT part of the state —
  /// a restored inspector must be constructed against the same profile,
  /// which the pipeline checkpoint guarantees via its registry fingerprint.
  struct State {
    int64_t frames_seen = 0;
    stats::Rng::State rng;
    ConformalMartingale::State martingale;
  };

  /// Captures the current state.
  State SaveState() const;

  /// Restores a captured state.
  void RestoreState(const State& state);

  /// Streams every observation into `recorder` (null disables; default).
  /// The recorder must outlive the inspector; the pipeline shares one
  /// recorder across the inspectors it re-arms so episodes survive
  /// redeployments.
  void set_recorder(obs::EpisodeRecorder* recorder) { recorder_ = recorder; }

 private:
  // Shared tail of ObserveLatent/TryObserveLatent: p-value, martingale
  // update, telemetry. `score` must already be validated/finite.
  Observation Ingest(double score);

  const DistributionProfile* profile_;
  std::shared_ptr<const BettingFunction> betting_;
  ConformalMartingale martingale_;
  stats::Rng rng_;
  int64_t frames_seen_ = 0;
  obs::EpisodeRecorder* recorder_ = nullptr;
};

}  // namespace vdrift::conformal

#endif  // VDRIFT_CORE_DRIFT_INSPECTOR_H_
