#include "core/pvalue.h"

#include <algorithm>

#include "common/logging.h"

namespace vdrift::conformal {

double ComputePValue(double a_f, const std::vector<double>& sorted_scores,
                     stats::Rng* rng) {
  VDRIFT_DCHECK(!sorted_scores.empty());
  // Scores strictly greater than a_f.
  auto upper =
      std::upper_bound(sorted_scores.begin(), sorted_scores.end(), a_f);
  auto lower =
      std::lower_bound(sorted_scores.begin(), sorted_scores.end(), a_f);
  double greater = static_cast<double>(sorted_scores.end() - upper);
  double equal = static_cast<double>(upper - lower);
  // U in (0, 1]: NextDouble() is [0, 1), so 1 - NextDouble() excludes the
  // zero that would collapse p to 0 when a_f exceeds every reference
  // score (the test score counts as tied with itself, hence `equal + 1`
  // and the n + 1 denominator). Guarantees p in (0, 1], keeping power
  // betting increments b(p) = eps * p^(eps-1) finite.
  double u = 1.0 - rng->NextDouble();
  return (greater + u * (equal + 1.0)) /
         static_cast<double>(sorted_scores.size() + 1);
}

}  // namespace vdrift::conformal
