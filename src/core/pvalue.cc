#include "core/pvalue.h"

#include <algorithm>

#include "common/logging.h"

namespace vdrift::conformal {

double ComputePValue(double a_f, const std::vector<double>& sorted_scores,
                     stats::Rng* rng) {
  VDRIFT_DCHECK(!sorted_scores.empty());
  // Scores strictly greater than a_f.
  auto upper =
      std::upper_bound(sorted_scores.begin(), sorted_scores.end(), a_f);
  auto lower =
      std::lower_bound(sorted_scores.begin(), sorted_scores.end(), a_f);
  double greater = static_cast<double>(sorted_scores.end() - upper);
  double equal = static_cast<double>(upper - lower);
  double u = rng->NextDouble();
  return (greater + u * equal) / static_cast<double>(sorted_scores.size());
}

}  // namespace vdrift::conformal
