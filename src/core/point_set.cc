#include "core/point_set.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"
#include "stats/distance.h"

namespace vdrift::conformal {

namespace {

// Average distance from x to its k nearest rows of `points`, optionally
// skipping one index (for leave-one-out scoring).
double KnnAverage(std::span<const float> x,
                  const std::vector<std::vector<float>>& points, int k,
                  int skip_index) {
  // Partial selection of the k smallest distances.
  std::vector<double> dists;
  dists.reserve(points.size());
  for (size_t i = 0; i < points.size(); ++i) {
    if (static_cast<int>(i) == skip_index) continue;
    dists.push_back(stats::Euclidean(x, points[i]));
  }
  int kk = std::min<int>(k, static_cast<int>(dists.size()));
  if (kk <= 0) return 0.0;
  std::nth_element(dists.begin(), dists.begin() + (kk - 1), dists.end());
  double sum = 0.0;
  for (int i = 0; i < kk; ++i) sum += dists[static_cast<size_t>(i)];
  return sum / kk;
}

}  // namespace

Result<PointSet> PointSet::Build(std::vector<std::vector<float>> points,
                                 int k) {
  if (points.empty()) {
    return Status::InvalidArgument("PointSet needs at least one point");
  }
  if (k < 1) {
    return Status::InvalidArgument("PointSet needs k >= 1");
  }
  size_t dim = points[0].size();
  if (dim == 0) {
    return Status::InvalidArgument("PointSet points must be non-empty");
  }
  for (const auto& p : points) {
    if (p.size() != dim) {
      return Status::InvalidArgument("PointSet dimension mismatch");
    }
  }
  PointSet set;
  set.points_ = std::move(points);
  set.dim_ = static_cast<int>(dim);
  set.k_ = k;
  set.scores_.reserve(set.points_.size());
  for (size_t i = 0; i < set.points_.size(); ++i) {
    set.scores_.push_back(
        KnnAverage(set.points_[i], set.points_, k, static_cast<int>(i)));
  }
  set.sorted_scores_ = set.scores_;
  std::sort(set.sorted_scores_.begin(), set.sorted_scores_.end());
  return set;
}

double PointSet::KnnScore(std::span<const float> x) const {
  return KnnAverage(x, points_, k_, -1);
}

}  // namespace vdrift::conformal
