#include "core/betting.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"

namespace vdrift::conformal {

PowerLogBetting::PowerLogBetting(double epsilon, double p_floor)
    : epsilon_(epsilon), p_floor_(p_floor) {
  // vdrift-lint: allow(no-data-dependent-check): ctor config contract
  VDRIFT_CHECK(epsilon > 0.0 && epsilon < 1.0)
      << "power betting needs epsilon in (0,1)";
  // vdrift-lint: allow(no-data-dependent-check): ctor config contract
  VDRIFT_CHECK(p_floor > 0.0 && p_floor < 1.0);
}

double PowerLogBetting::Increment(double p) const {
  p = std::clamp(p, p_floor_, 1.0);
  return std::log(epsilon_) + (epsilon_ - 1.0) * std::log(p);
}

double PowerLogBetting::MaxIncrement() const { return Increment(0.0); }

MixtureLogBetting::MixtureLogBetting(double p_floor) : p_floor_(p_floor) {
  // vdrift-lint: allow(no-data-dependent-check): ctor config contract
  VDRIFT_CHECK(p_floor > 0.0 && p_floor < 1.0);
}

double MixtureLogBetting::Increment(double p) const {
  p = std::clamp(p, p_floor_, 1.0);
  // Average the power bet g_eps(p) = eps p^(eps-1) over an epsilon grid;
  // the log of the averaged bet is the mixture increment.
  constexpr double kGrid[] = {0.1, 0.3, 0.5, 0.7, 0.9};
  double sum = 0.0;
  for (double eps : kGrid) {
    sum += eps * std::pow(p, eps - 1.0);
  }
  return std::log(sum / 5.0);
}

double MixtureLogBetting::MaxIncrement() const { return Increment(0.0); }

SymmetricPowerLogBetting::SymmetricPowerLogBetting(double epsilon,
                                                   double p_floor)
    : epsilon_(epsilon), p_floor_(p_floor) {
  // vdrift-lint: allow(no-data-dependent-check): ctor config contract
  VDRIFT_CHECK(epsilon > 0.0 && epsilon < 1.0)
      << "symmetric power betting needs epsilon in (0,1)";
  // vdrift-lint: allow(no-data-dependent-check): ctor config contract
  VDRIFT_CHECK(p_floor > 0.0 && p_floor < 0.5);
}

double SymmetricPowerLogBetting::Increment(double p) const {
  p = std::clamp(p, p_floor_, 1.0 - p_floor_);
  double bet = 0.5 * epsilon_ *
               (std::pow(p, epsilon_ - 1.0) +
                std::pow(1.0 - p, epsilon_ - 1.0));
  return std::log(bet);
}

double SymmetricPowerLogBetting::MaxIncrement() const {
  return Increment(0.0);
}

std::unique_ptr<BettingFunction> MakeDefaultBetting() {
  // epsilon = 0.55 with floor 5e-4 puts the max increment at ~2.16, so a
  // post-drift stream (p at either floor) crosses the W=3 paper threshold
  // tau = 4.9 in 3 frames (3 x 2.16 = 6.5), while the positive tail under
  // uniform p-values keeps false alarms to ~4e-6 per frame.
  return std::make_unique<SymmetricPowerLogBetting>(0.55, 5e-4);
}

}  // namespace vdrift::conformal
