#ifndef VDRIFT_CORE_ENSEMBLE_H_
#define VDRIFT_CORE_ENSEMBLE_H_

#include <memory>
#include <vector>

#include "common/result.h"
#include "nn/classifier.h"
#include "tensor/tensor.h"

namespace vdrift::select {

/// \brief A frame with its oracle label, as consumed by MSBO and the
/// calibration routine.
struct LabeledFrame {
  tensor::Tensor pixels;
  int label = 0;
};

/// \brief Uniformly-weighted deep ensemble (paper §5.2.2).
///
/// L members (typical L between 3 and 10) trained end-to-end on randomized
/// shuffles of the full training set with random independent
/// initialisations — the Lakshminarayanan-style recipe the paper adopts.
/// Predictions are combined as p(y|x) = (1/L) sum_l p_l(y|x); predictive
/// uncertainty is quantified with the Brier score of the mixture.
class DeepEnsemble {
 public:
  /// Wraps the trained members (shared so a member can double as the
  /// registry's deployed query model); they must agree on K.
  static Result<DeepEnsemble> Make(
      std::vector<std::shared_ptr<nn::ProbabilisticClassifier>> members);

  DeepEnsemble(DeepEnsemble&&) = default;
  DeepEnsemble& operator=(DeepEnsemble&&) = default;

  /// Mixture class probabilities for one frame.
  std::vector<float> PredictProba(const tensor::Tensor& frame) const;

  /// Argmax of the mixture.
  int Predict(const tensor::Tensor& frame) const;

  /// Brier score of the mixture prediction against a one-hot label:
  /// (1/K) sum_k (delta_{k=y} - p_k)^2. Zero means complete certainty in
  /// the correct class; higher means more uncertain (§5.2.1).
  double BrierScore(const tensor::Tensor& frame, int label) const;

  /// Average Brier score over a labeled window (Alg. 3 lines 4-12).
  double AverageBrier(const std::vector<LabeledFrame>& window) const;

  /// Number of members L.
  int size() const { return static_cast<int>(members_.size()); }
  /// Access to a member (shared with the caller).
  const std::shared_ptr<nn::ProbabilisticClassifier>& member(int i) const {
    return members_[static_cast<size_t>(i)];
  }
  /// Number of classes K.
  int num_classes() const { return num_classes_; }

 private:
  explicit DeepEnsemble(
      std::vector<std::shared_ptr<nn::ProbabilisticClassifier>> members)
      : members_(std::move(members)),
        num_classes_(members_.front()->num_classes()) {}

  std::vector<std::shared_ptr<nn::ProbabilisticClassifier>> members_;
  int num_classes_;
};

}  // namespace vdrift::select

#endif  // VDRIFT_CORE_ENSEMBLE_H_
