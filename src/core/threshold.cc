#include "core/threshold.h"

#include <cmath>

#include "common/logging.h"

namespace vdrift::conformal {

double Threshold(ThresholdPolicy policy, int window, double r) {
  // vdrift-lint: allow(no-data-dependent-check): config precondition
  VDRIFT_CHECK(window >= 1);
  // vdrift-lint: allow(no-data-dependent-check): config precondition
  VDRIFT_CHECK(r > 0.0 && r <= 1.0);
  switch (policy) {
    case ThresholdPolicy::kPaper:
      return std::sqrt(2.0 * window * (2.0 / r));
    case ThresholdPolicy::kHoeffding:
      return std::sqrt(2.0 * window * std::log(2.0 / r));
  }
  VDRIFT_LOG_FATAL << "unknown threshold policy";
  return 0.0;
}

std::string ThresholdPolicyName(ThresholdPolicy policy) {
  switch (policy) {
    case ThresholdPolicy::kPaper:
      return "paper";
    case ThresholdPolicy::kHoeffding:
      return "hoeffding";
  }
  return "?";
}

}  // namespace vdrift::conformal
