#ifndef VDRIFT_CORE_THRESHOLD_H_
#define VDRIFT_CORE_THRESHOLD_H_

#include <string>

namespace vdrift::conformal {

/// \brief How the drift test's threshold tau(W, r) is computed.
///
/// A drift is declared when |S[i] - S[i-W]| > tau(W, r) (paper Eq. 15).
enum class ThresholdPolicy {
  /// tau = sqrt(2 W (2 / r)) — the formula exactly as printed in the
  /// paper, which reproduces its worked example (W=2, r=0.5 => tau=4).
  kPaper,
  /// tau = sqrt(2 W ln(2 / r)) — what the Hoeffding-Azuma bound of
  /// Eq. 13-14 actually yields when solved for the threshold at
  /// significance r. Tighter, hence faster detection but more sensitive.
  kHoeffding,
};

/// The threshold value for a window W at significance level r.
double Threshold(ThresholdPolicy policy, int window, double r);

/// Printable policy name.
std::string ThresholdPolicyName(ThresholdPolicy policy);

}  // namespace vdrift::conformal

#endif  // VDRIFT_CORE_THRESHOLD_H_
