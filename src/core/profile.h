#ifndef VDRIFT_CORE_PROFILE_H_
#define VDRIFT_CORE_PROFILE_H_

#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "core/point_set.h"
#include "stats/rng.h"
#include "tensor/tensor.h"
#include "vae/trainer.h"
#include "vae/vae.h"

namespace vdrift::conformal {

/// \brief Everything DI and MSBI need to know about one distribution F_i.
///
/// Bundles the VAE A_Ti trained on T_i, the i.i.d. latent sample Sigma_Ti
/// drawn from it, and the precomputed non-conformity scores A_i (paper
/// Table 1). Built once when the distribution is first provisioned; the
/// VAE is never re-trained (§4.2.2).
class DistributionProfile {
 public:
  /// Build options.
  struct Options {
    vae::VaeConfig vae;           ///< Architecture of A_Ti.
    vae::TrainerConfig trainer;   ///< VAE training hyperparameters.
    int sigma_size = 200;         ///< |Sigma_Ti|: latent samples to draw.
    int k = 5;                    ///< K for the K-NN non-conformity score.
    /// Weight on the *standardized* global frame statistics appended to
    /// the VAE latent to form the scoring embedding. The paper admits any
    /// image distance for the non-conformity score (§4.2.3); at this
    /// library's laptop scale the small contractive encoder alone maps
    /// unseen conditions near the latent centroid, so photometric
    /// statistics (see video/frame_stats.h) carry the drift signal
    /// alongside the latent. Each statistic is centred and scaled by its
    /// mean/std over the training frames, so one unit of distance equals
    /// one within-distribution standard deviation. 0 disables
    /// augmentation.
    double stats_weight = 1.0;
  };

  /// Trains the VAE on `training_frames` ([C,H,W] pixel tensors), draws
  /// Sigma_Ti from the learned posterior, and precomputes A_i.
  static Result<std::unique_ptr<DistributionProfile>> Build(
      std::string name, const std::vector<tensor::Tensor>& training_frames,
      const Options& options, stats::Rng* rng);

  /// Wraps an already-trained VAE (shared with other components) plus a
  /// ready point set. Used by tests and by the model registry when the VAE
  /// is reused across DI and MSBI.
  /// `stats_weight`, `stats_mean` and `stats_scale` must match how
  /// `sigma` was built (weight 0 when the point set holds raw latents).
  DistributionProfile(std::string name, std::shared_ptr<vae::Vae> vae,
                      PointSet sigma, double stats_weight = 0.0,
                      std::vector<float> stats_mean = {},
                      std::vector<float> stats_scale = {});

  /// The distribution's name.
  const std::string& name() const { return name_; }
  /// The reference sample with precomputed scores.
  const PointSet& sigma() const { return sigma_; }
  /// The VAE (non-const: encoding runs Forward on cached buffers).
  vae::Vae* vae() const { return vae_.get(); }

  /// Encodes a frame to its deterministic scoring embedding: posterior
  /// mean plus weighted global statistics. Used by the ODIN baseline's
  /// shared encoder (same representation as DI, for a fair comparison).
  std::vector<float> Encode(const tensor::Tensor& pixels) const;

  /// Encodes a frame the same way Sigma_Ti was generated — one sampled
  /// posterior draw. The Drift Inspector scores incoming frames with this
  /// so that, on the profile's own distribution, a_f is exchangeable with
  /// the precomputed A_i and the conformal p-values are exactly uniform.
  std::vector<float> EncodeSampled(const tensor::Tensor& pixels,
                                   stats::Rng* rng) const;

  /// Deep copy: clones the VAE (same weights, fresh caches) and copies the
  /// point set and statistics, so the clone can score frames on another
  /// thread while this instance keeps serving its own stream.
  std::unique_ptr<DistributionProfile> Clone() const;

 private:
  // Appends weighted global statistics to a latent vector.
  std::vector<float> Augment(std::vector<float> latent,
                             const tensor::Tensor& pixels) const;

  std::string name_;
  std::shared_ptr<vae::Vae> vae_;
  PointSet sigma_;
  double stats_weight_ = 0.0;
  std::vector<float> stats_mean_;
  std::vector<float> stats_scale_;
};

}  // namespace vdrift::conformal

#endif  // VDRIFT_CORE_PROFILE_H_
