#ifndef VDRIFT_BENCHUTIL_EXPERIMENTS_H_
#define VDRIFT_BENCHUTIL_EXPERIMENTS_H_

#include <vector>

#include "baseline/odin.h"
#include "core/drift_inspector.h"
#include "core/profile.h"
#include "video/frame.h"

namespace vdrift::benchutil {

/// \brief Outcome of one detection-latency measurement.
struct LatencyResult {
  /// Frames consumed after the change point before the drift was declared
  /// (-1 if never detected within the supplied frames).
  int frames_to_detect = -1;
  /// Wall time spent inside the detector.
  double seconds = 0.0;
};

/// Feeds `post_drift` frames to a Drift Inspector armed on `source` and
/// returns the detection latency (Fig. 3 / Fig. 4 protocol: ground-truth
/// drift at frame 0 of the target sequence).
LatencyResult MeasureDiLatency(const conformal::DistributionProfile& source,
                               const std::vector<video::Frame>& post_drift,
                               const conformal::DriftInspectorConfig& config,
                               uint64_t seed);

/// Same protocol for ODIN-Detect: one permanent cluster seeded from the
/// source training frames (encoded with the source profile, the shared
/// representation), drift declared when the temporary cluster of target
/// frames is promoted.
LatencyResult MeasureOdinLatency(
    const conformal::DistributionProfile& source,
    const std::vector<video::Frame>& source_training,
    const std::vector<video::Frame>& post_drift,
    const baseline::OdinConfig& config);

/// Runs the Drift Inspector over `frames` of the *source* distribution and
/// counts (false) drift declarations; used by the calibration benches.
int CountFalseAlarms(const conformal::DistributionProfile& source,
                     const std::vector<video::Frame>& frames,
                     const conformal::DriftInspectorConfig& config,
                     uint64_t seed);

}  // namespace vdrift::benchutil

#endif  // VDRIFT_BENCHUTIL_EXPERIMENTS_H_
