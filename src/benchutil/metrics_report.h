#ifndef VDRIFT_BENCHUTIL_METRICS_REPORT_H_
#define VDRIFT_BENCHUTIL_METRICS_REPORT_H_

#include <string>

#include "obs/episode_trace.h"
#include "obs/metrics.h"

namespace vdrift::benchutil {

/// Renders the registry as human-readable tables (counters/gauges, then
/// histograms with count/mean/p50/p90/p99/sum) and prints them to stdout.
void PrintMetricsTable(const obs::MetricsRegistry& registry);

/// Writes the JSON metrics report (registry + optional episode trace) to
/// `path` — resolved from the VDRIFT_METRICS_JSON env var when set,
/// `default_path` otherwise — and prints where it went. Returns the path
/// written (empty on failure, with the error printed).
std::string EmitMetricsJson(const obs::MetricsRegistry& registry,
                            const obs::EpisodeRecorder* episodes,
                            const std::string& default_path);

}  // namespace vdrift::benchutil

#endif  // VDRIFT_BENCHUTIL_METRICS_REPORT_H_
