#ifndef VDRIFT_BENCHUTIL_METRICS_REPORT_H_
#define VDRIFT_BENCHUTIL_METRICS_REPORT_H_

#include <string>

#include "obs/episode_trace.h"
#include "obs/metrics.h"
#include "obs/watchdog.h"

namespace vdrift::benchutil {

/// Renders the registry as human-readable tables (counters/gauges, then
/// histograms with count/mean/p50/p90/p99/sum) and prints them to stdout.
/// Empty histograms show "-" for the shape columns instead of a fake 0.
void PrintMetricsTable(const obs::MetricsRegistry& registry);

/// Writes the JSON metrics report (registry + optional episode trace) to
/// `path` — resolved from the VDRIFT_METRICS_JSON env var when set,
/// `default_path` otherwise — and prints where it went. Returns the path
/// written (empty on failure, with the error printed).
std::string EmitMetricsJson(const obs::MetricsRegistry& registry,
                            const obs::EpisodeRecorder* episodes,
                            const std::string& default_path);

/// As above, with the SLO watchdog's alert log spliced in under "alerts"
/// (pass null for the plain report).
std::string EmitMetricsJson(const obs::MetricsRegistry& registry,
                            const obs::EpisodeRecorder* episodes,
                            const obs::HealthWatchdog* watchdog,
                            const std::string& default_path);

/// Writes the registry in OpenMetrics text exposition format when the
/// VDRIFT_METRICS_OPENMETRICS env var names a path (no-op otherwise,
/// mirroring how VDRIFT_TRACE_JSON gates the flight recorder). Returns the
/// path written ("" when unset or on failure, with the error printed).
std::string EmitOpenMetrics(const obs::MetricsRegistry& registry);

}  // namespace vdrift::benchutil

#endif  // VDRIFT_BENCHUTIL_METRICS_REPORT_H_
