#ifndef VDRIFT_BENCHUTIL_BENCH_HARNESS_H_
#define VDRIFT_BENCHUTIL_BENCH_HARNESS_H_

#include <functional>
#include <map>
#include <string>
#include <vector>

#include "benchutil/ledger.h"
#include "benchutil/workbench.h"
#include "obs/metrics.h"

namespace vdrift::benchutil {

/// \brief Resolved run parameters of one bench process.
///
/// Filled from the environment so CI, tools/run_bench_suite.sh and ad-hoc
/// shells all steer benches the same way:
///   VDRIFT_BENCH_SMOKE    nonzero => 1 repeat, no warmup, tiny workbench,
///                         dataset filter defaults to "Tokyo"
///   VDRIFT_BENCH_REPEATS  measured repetitions per Repeat() block
///   VDRIFT_BENCH_WARMUP   unmeasured warmup repetitions per Repeat() block
///   VDRIFT_BENCH_SEED     base RNG seed (also seeds the workbench)
///   VDRIFT_BENCH_DATASET  only run datasets whose name matches exactly
///   VDRIFT_BENCH_JSON     report path (default BENCH_<name>.json in cwd)
///   VDRIFT_BENCH_LEDGER   run-ledger sink: a .jsonl file, or a directory
///                         (record appends to <dir>/<name>.jsonl). Unset =
///                         no ledger append.
struct BenchConfig {
  std::string name;
  int repeats = 5;
  int warmup = 1;
  uint64_t seed = 9001;
  bool smoke = false;
  std::string dataset_filter;  ///< Empty = run every dataset.
  std::string json_path;
  std::string ledger_path;  ///< Resolved ledger file ("" = disabled).
};

/// Keeps `value` observable so benchmarked expressions are not dead-code
/// eliminated (the classic empty-asm sink).
template <typename T>
inline void DoNotOptimize(const T& value) {
  asm volatile("" : : "g"(&value) : "memory");
}

/// \brief The unified bench driver behind every BENCH_<name>.json.
///
/// One harness per bench binary. Stages are named latency histograms
/// (seconds); the report serialises each as count/min/max/mean/p50/p90/p99
/// plus derived fps, alongside the global op counters (FLOP/byte totals
/// from the kernel probes), the resolved config and the git revision —
/// the canonical artifact tools/compare_bench.py diffs between revisions.
class BenchHarness {
 public:
  explicit BenchHarness(const std::string& name);

  const BenchConfig& config() const { return config_; }
  /// The harness-local registry stage histograms live in; hand it to
  /// TraceSpan/ScopedTimer to record straight into a stage.
  obs::MetricsRegistry& registry() { return registry_; }

  /// True when `dataset` passes the configured filter.
  bool ShouldRunDataset(const std::string& dataset) const;
  /// Workbench options honouring the bench seed; smoke mode shrinks the
  /// dataset/training scale to seconds and uses a separate cache dir.
  WorkbenchOptions MakeWorkbenchOptions() const;

  /// The latency histogram of `stage` (registered on first use).
  obs::Histogram& StageHistogram(const std::string& stage);
  void RecordStageSeconds(const std::string& stage, double seconds);
  /// Runs `fn` config().warmup times unmeasured, then config().repeats
  /// times with wall time recorded into `stage`.
  void Repeat(const std::string& stage, const std::function<void()>& fn);
  /// Merges an externally collected histogram (e.g. a pipeline run's
  /// per-stage timings) into `stage`. Bucket layouts must match across
  /// imports of the same stage.
  void ImportStage(const std::string& stage,
                   const obs::Histogram::Snapshot& snapshot);

  /// Free-form string annotations surfaced under "labels" in the report.
  void SetLabel(const std::string& key, const std::string& value);
  /// The stage whose fps becomes the report's headline throughput_fps.
  /// Unset => the stage with the highest sample count.
  void SetPrimaryStage(const std::string& stage);
  /// Overrides the derived headline throughput.
  void SetThroughputFps(double fps);

  /// The canonical report (stable, sorted key order at every level).
  /// Includes the machine fingerprint, per-stage repeat-level "samples"
  /// arrays and the per-kernel op-probe table — the evidence the
  /// statistical gate (tools/compare_bench.py) needs.
  std::string ReportJson() const;
  /// Writes ReportJson() to config().json_path and prints where it went.
  /// When config().ledger_path is set (VDRIFT_BENCH_LEDGER), also appends
  /// this run's LedgerRecord there. Returns the report path (empty on
  /// failure, with the error printed).
  std::string WriteReport() const;

  /// This run's ledger record (also what WriteReport appends).
  LedgerRecord MakeLedgerRecord() const;

  /// Raw repeat-level samples recorded for `stage` ([] when the stage was
  /// only imported from a histogram).
  const std::vector<double>& StageSamples(const std::string& stage) const;

 private:
  std::map<std::string, obs::Histogram::Snapshot> MergedStages() const;

  BenchConfig config_;
  obs::MetricsRegistry registry_;
  std::map<std::string, obs::Histogram::Snapshot> imported_;
  /// Raw per-repeat wall times per stage, in execution order (bounded per
  /// stage; see kMaxRawSamplesPerStage in the .cc).
  std::map<std::string, std::vector<double>> samples_;
  std::map<std::string, std::string> labels_;
  std::string primary_stage_;
  double throughput_override_ = -1.0;
};

/// The git revision baked into reports: VDRIFT_GIT_REV when set, otherwise
/// `git rev-parse --short=12 HEAD`, otherwise "unknown".
std::string GitRevision();

}  // namespace vdrift::benchutil

#endif  // VDRIFT_BENCHUTIL_BENCH_HARNESS_H_
