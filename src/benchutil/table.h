#ifndef VDRIFT_BENCHUTIL_TABLE_H_
#define VDRIFT_BENCHUTIL_TABLE_H_

#include <string>
#include <vector>

namespace vdrift::benchutil {

/// \brief Fixed-width ASCII table printer for the bench harnesses.
///
/// Every table/figure bench prints its rows through this so outputs are
/// uniform and easy to diff against EXPERIMENTS.md.
class Table {
 public:
  /// Creates a table with the given column headers.
  explicit Table(std::vector<std::string> headers);

  /// Appends a row; cells beyond the header count are dropped, missing
  /// cells render empty.
  void AddRow(std::vector<std::string> cells);

  /// Renders the table with a rule under the header.
  std::string ToString() const;

  /// Prints to stdout.
  void Print() const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// Formats a double with the given precision.
std::string Fmt(double value, int precision = 2);

/// Prints a section banner ("=== title ===") to stdout.
void Banner(const std::string& title);

}  // namespace vdrift::benchutil

#endif  // VDRIFT_BENCHUTIL_TABLE_H_
