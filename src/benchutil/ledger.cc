#include "benchutil/ledger.h"

#include <sys/stat.h>
#include <unistd.h>

#include <fstream>
#include <sstream>
#include <thread>

#include "common/logging.h"

namespace vdrift::benchutil {

namespace {

/// FNV-1a 64-bit — stable across processes (no std::hash salt), short
/// enough to read in a report.
uint64_t Fnv1a(const std::string& text, uint64_t hash = 14695981039346656037ull) {
  for (unsigned char c : text) {
    hash ^= c;
    hash *= 1099511628211ull;
  }
  return hash;
}

std::string ReadFirstMatchingLine(const std::string& path,
                                  const std::string& prefix) {
  std::ifstream in(path);
  if (!in) return "";
  std::string line;
  while (std::getline(in, line)) {
    if (line.rfind(prefix, 0) == 0) return line;
  }
  return "";
}

std::string ReadTrimmedFile(const std::string& path) {
  std::ifstream in(path);
  if (!in) return "";
  std::string content;
  std::getline(in, content);
  while (!content.empty() &&
         (content.back() == '\n' || content.back() == '\r' ||
          content.back() == ' ')) {
    content.pop_back();
  }
  return content;
}

double NumberOr(const obs::json::Value* value, double fallback) {
  return value != nullptr && value->is_number() ? value->number_value
                                                : fallback;
}

std::string StringOr(const obs::json::Value* value,
                     const std::string& fallback) {
  return value != nullptr && value->is_string() ? value->string_value
                                                : fallback;
}

/// mkdir -p for the parent directories of `path`.
Status MakeParentDirs(const std::string& path) {
  size_t pos = 0;
  while ((pos = path.find('/', pos + 1)) != std::string::npos) {
    std::string dir = path.substr(0, pos);
    if (dir.empty()) continue;
    if (::mkdir(dir.c_str(), 0755) != 0 && errno != EEXIST) {
      return Status::IoError("cannot create ledger directory: " + dir);
    }
  }
  return Status::OK();
}

}  // namespace

MachineFingerprint MachineFingerprint::Detect() {
  MachineFingerprint fp;
  std::string model_line =
      ReadFirstMatchingLine("/proc/cpuinfo", "model name");
  size_t colon = model_line.find(':');
  if (colon != std::string::npos) {
    size_t start = model_line.find_first_not_of(" \t", colon + 1);
    fp.cpu_model =
        start == std::string::npos ? "" : model_line.substr(start);
  }
  if (fp.cpu_model.empty()) fp.cpu_model = "unknown";
  fp.cores = static_cast<int>(std::thread::hardware_concurrency());
  fp.governor = ReadTrimmedFile(
      "/sys/devices/system/cpu/cpu0/cpufreq/scaling_governor");
  if (fp.governor.empty()) fp.governor = "unknown";
  fp.page_size = ::sysconf(_SC_PAGESIZE);
  return fp;
}

std::string MachineFingerprint::Id() const {
  std::string key = cpu_model + "|" + std::to_string(cores) + "|" +
                    governor + "|" + std::to_string(page_size);
  char buf[17];
  std::snprintf(buf, sizeof(buf), "%016llx",
                static_cast<unsigned long long>(Fnv1a(key)));
  return buf;
}

std::string MachineFingerprint::ToJson() const {
  std::string out = "{";
  out += "\"cores\":" + std::to_string(cores);
  out += ",\"cpu_model\":\"" + obs::json::Escape(cpu_model) + "\"";
  out += ",\"governor\":\"" + obs::json::Escape(governor) + "\"";
  out += ",\"id\":\"" + Id() + "\"";
  out += ",\"page_size\":" + std::to_string(page_size);
  out += "}";
  return out;
}

MachineFingerprint MachineFingerprint::FromJson(
    const obs::json::Value& value) {
  MachineFingerprint fp;
  fp.cpu_model = StringOr(value.Find("cpu_model"), "unknown");
  fp.cores = static_cast<int>(NumberOr(value.Find("cores"), 0));
  fp.governor = StringOr(value.Find("governor"), "unknown");
  fp.page_size = static_cast<long>(NumberOr(value.Find("page_size"), 0));
  return fp;
}

std::string LedgerRecord::ToJsonLine() const {
  std::string out = "{";
  out += "\"bench\":\"" + obs::json::Escape(bench) + "\"";
  out += ",\"env\":{";
  bool first = true;
  for (const auto& [key, value] : env) {
    if (!first) out += ",";
    first = false;
    out += "\"" + obs::json::Escape(key) + "\":\"" +
           obs::json::Escape(value) + "\"";
  }
  out += "}";
  out += ",\"git_rev\":\"" + obs::json::Escape(git_rev) + "\"";
  out += ",\"kernels\":{";
  first = true;
  for (const auto& [name, kernel] : kernels) {
    if (!first) out += ",";
    first = false;
    out += "\"" + obs::json::Escape(name) + "\":{";
    out += "\"bytes\":" + std::to_string(kernel.bytes);
    out += ",\"calls\":" + std::to_string(kernel.calls);
    out += ",\"flops\":" + std::to_string(kernel.flops);
    out += ",\"seconds\":" + obs::json::FormatDouble(kernel.seconds);
    out += "}";
  }
  out += "}";
  out += ",\"machine\":" + machine.ToJson();
  out += ",\"schema\":" + std::to_string(schema);
  out += ",\"stages\":{";
  first = true;
  for (const auto& [name, stage] : stages) {
    if (!first) out += ",";
    first = false;
    out += "\"" + obs::json::Escape(name) + "\":{";
    out += "\"count\":" + std::to_string(stage.count);
    if (stage.count > 0) {
      out += ",\"max\":" + obs::json::FormatDouble(stage.max);
      out += ",\"min\":" + obs::json::FormatDouble(stage.min);
      out += ",\"p50\":" + obs::json::FormatDouble(stage.p50);
      out += ",\"p90\":" + obs::json::FormatDouble(stage.p90);
      out += ",\"p99\":" + obs::json::FormatDouble(stage.p99);
    }
    if (!stage.samples.empty()) {
      out += ",\"samples\":[";
      for (size_t i = 0; i < stage.samples.size(); ++i) {
        if (i > 0) out += ",";
        out += obs::json::FormatDouble(stage.samples[i]);
      }
      out += "]";
    }
    out += ",\"sum\":" + obs::json::FormatDouble(stage.sum);
    out += "}";
  }
  out += "}";
  out += ",\"throughput_fps\":" + obs::json::FormatDouble(throughput_fps);
  out += ",\"unix_time\":" + std::to_string(unix_time);
  out += "}";
  return out;
}

Result<LedgerRecord> LedgerRecord::FromJson(const obs::json::Value& value) {
  if (!value.is_object()) {
    return Status::InvalidArgument("ledger record is not a JSON object");
  }
  LedgerRecord record;
  const obs::json::Value* bench = value.Find("bench");
  if (bench == nullptr || !bench->is_string() ||
      bench->string_value.empty()) {
    return Status::InvalidArgument("ledger record missing \"bench\"");
  }
  record.bench = bench->string_value;
  record.schema = static_cast<int>(NumberOr(value.Find("schema"), 1));
  record.git_rev = StringOr(value.Find("git_rev"), "unknown");
  record.unix_time =
      static_cast<int64_t>(NumberOr(value.Find("unix_time"), 0));
  record.throughput_fps = NumberOr(value.Find("throughput_fps"), 0.0);
  if (const obs::json::Value* machine = value.Find("machine");
      machine != nullptr && machine->is_object()) {
    record.machine = MachineFingerprint::FromJson(*machine);
  }
  if (const obs::json::Value* env = value.Find("env");
      env != nullptr && env->is_object()) {
    for (const auto& [key, entry] : env->object_value) {
      if (entry.is_string()) record.env[key] = entry.string_value;
    }
  }
  const obs::json::Value* stages = value.Find("stages");
  if (stages == nullptr || !stages->is_object()) {
    return Status::InvalidArgument("ledger record missing \"stages\"");
  }
  for (const auto& [name, entry] : stages->object_value) {
    if (!entry.is_object()) {
      return Status::InvalidArgument("ledger stage is not an object: " +
                                     name);
    }
    LedgerStage stage;
    stage.count = static_cast<int64_t>(NumberOr(entry.Find("count"), 0));
    stage.sum = NumberOr(entry.Find("sum"), 0.0);
    stage.min = NumberOr(entry.Find("min"), 0.0);
    stage.max = NumberOr(entry.Find("max"), 0.0);
    stage.p50 = NumberOr(entry.Find("p50"), 0.0);
    stage.p90 = NumberOr(entry.Find("p90"), 0.0);
    stage.p99 = NumberOr(entry.Find("p99"), 0.0);
    if (const obs::json::Value* samples = entry.Find("samples");
        samples != nullptr && samples->is_array()) {
      for (const obs::json::Value& sample : samples->array_value) {
        if (sample.is_number()) stage.samples.push_back(sample.number_value);
      }
    }
    record.stages[name] = std::move(stage);
  }
  if (const obs::json::Value* kernels = value.Find("kernels");
      kernels != nullptr && kernels->is_object()) {
    for (const auto& [name, entry] : kernels->object_value) {
      if (!entry.is_object()) continue;
      LedgerKernel kernel;
      kernel.calls = static_cast<int64_t>(NumberOr(entry.Find("calls"), 0));
      kernel.flops = static_cast<int64_t>(NumberOr(entry.Find("flops"), 0));
      kernel.bytes = static_cast<int64_t>(NumberOr(entry.Find("bytes"), 0));
      kernel.seconds = NumberOr(entry.Find("seconds"), 0.0);
      record.kernels[name] = kernel;
    }
  }
  return record;
}

Result<LedgerRecord> LedgerRecord::FromJsonLine(const std::string& line) {
  Result<obs::json::Value> parsed = obs::json::Parse(line);
  if (!parsed.ok()) return parsed.status();
  return FromJson(parsed.value());
}

Status AppendLedgerRecord(const std::string& path,
                          const LedgerRecord& record) {
  Status dirs = MakeParentDirs(path);
  if (!dirs.ok()) return dirs;
  std::ofstream out(path, std::ios::app);
  if (!out) {
    return Status::IoError("cannot open ledger for append: " + path);
  }
  out << record.ToJsonLine() << "\n";
  out.flush();
  if (!out) return Status::IoError("failed appending to ledger: " + path);
  return Status::OK();
}

Result<LedgerHistory> ReadLedger(const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::IoError("cannot open ledger: " + path);
  LedgerHistory history;
  std::string line;
  int line_number = 0;
  while (std::getline(in, line)) {
    ++line_number;
    if (line.find_first_not_of(" \t\r") == std::string::npos) continue;
    Result<LedgerRecord> record = LedgerRecord::FromJsonLine(line);
    if (!record.ok()) {
      // Torn append / truncation: skip the line, keep the history. The
      // count is surfaced so tooling can warn without failing.
      VDRIFT_LOG_WARNING << "ledger " << path << " line " << line_number
                         << " unparsable, skipped: "
                         << record.status().ToString();
      ++history.corrupt_lines;
      continue;
    }
    history.records.push_back(std::move(record).value());
  }
  return history;
}

std::map<std::string, LedgerKernel> CollectKernelStats(
    const obs::MetricsRegistry& registry) {
  static const std::string kPrefix = "vdrift.ops.";
  std::map<std::string, LedgerKernel> kernels;
  for (const auto& [name, value] : registry.Counters()) {
    if (name.rfind(kPrefix, 0) != 0) continue;
    size_t dot = name.rfind('.');
    if (dot == std::string::npos || dot < kPrefix.size()) continue;
    std::string kernel = name.substr(kPrefix.size(), dot - kPrefix.size());
    std::string field = name.substr(dot + 1);
    LedgerKernel& entry = kernels[kernel];
    if (field == "calls") {
      entry.calls = value;
    } else if (field == "flops") {
      entry.flops = value;
    } else if (field == "bytes") {
      entry.bytes = value;
    }
  }
  for (const auto& [name, snapshot] : registry.Histograms()) {
    if (name.rfind(kPrefix, 0) != 0) continue;
    size_t dot = name.rfind('.');
    if (dot == std::string::npos || dot < kPrefix.size()) continue;
    if (name.substr(dot + 1) != "seconds") continue;
    std::string kernel = name.substr(kPrefix.size(), dot - kPrefix.size());
    auto it = kernels.find(kernel);
    if (it == kernels.end()) continue;  // seconds without calls: stale
    it->second.seconds = snapshot.sum;
  }
  return kernels;
}

}  // namespace vdrift::benchutil
