#include "benchutil/table.h"

#include <algorithm>
#include <cstdio>
#include <sstream>

namespace vdrift::benchutil {

Table::Table(std::vector<std::string> headers)
    : headers_(std::move(headers)) {}

void Table::AddRow(std::vector<std::string> cells) {
  cells.resize(headers_.size());
  rows_.push_back(std::move(cells));
}

std::string Table::ToString() const {
  std::vector<size_t> widths(headers_.size());
  for (size_t c = 0; c < headers_.size(); ++c) {
    widths[c] = headers_[c].size();
    for (const auto& row : rows_) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  std::ostringstream out;
  auto emit_row = [&](const std::vector<std::string>& cells) {
    for (size_t c = 0; c < cells.size(); ++c) {
      out << (c == 0 ? "" : "  ") << cells[c]
          << std::string(widths[c] - cells[c].size(), ' ');
    }
    out << "\n";
  };
  emit_row(headers_);
  size_t total = 0;
  for (size_t c = 0; c < widths.size(); ++c) {
    total += widths[c] + (c == 0 ? 0 : 2);
  }
  out << std::string(total, '-') << "\n";
  for (const auto& row : rows_) emit_row(row);
  return out.str();
}

void Table::Print() const { std::fputs(ToString().c_str(), stdout); }

std::string Fmt(double value, int precision) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.*f", precision, value);
  return buffer;
}

void Banner(const std::string& title) {
  std::printf("\n=== %s ===\n", title.c_str());
}

}  // namespace vdrift::benchutil
