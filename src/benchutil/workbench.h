#ifndef VDRIFT_BENCHUTIL_WORKBENCH_H_
#define VDRIFT_BENCHUTIL_WORKBENCH_H_

#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "core/msbo.h"
#include "core/registry.h"
#include "pipeline/provision.h"
#include "video/datasets.h"

namespace vdrift::benchutil {

/// \brief Shared configuration of the bench harnesses.
struct WorkbenchOptions {
  /// Stream-length scale relative to Table 5 (1.0 = the paper's sizes).
  double dataset_scale = 0.02;
  /// Frames rendered per sequence to train each model.
  int train_frames = 260;
  /// Frames per sequence in the MSBO calibration sample S_Ti.
  int calibration_sample = 24;
  pipeline::ProvisionOptions provision;
  uint64_t seed = 9001;
  /// Directory for the trained-model cache ("" disables caching).
  std::string cache_dir = "vdrift_cache";
};

/// Bench defaults: the provisioning recipe validated by the test suite.
WorkbenchOptions DefaultWorkbenchOptions();

/// \brief A dataset plus its fully provisioned model registry.
///
/// Training the per-sequence models is by far the most expensive part of
/// every bench, and each table/figure bench needs the same models, so the
/// workbench serializes all trained parameters to `cache_dir` on first
/// build and reloads them afterwards. Training frames and calibration
/// samples are regenerated deterministically from the scene specs.
struct Workbench {
  video::SyntheticDataset dataset;
  select::ModelRegistry registry;  ///< One entry per dataset sequence.
  std::vector<std::vector<video::Frame>> training_frames;
  std::vector<std::vector<select::LabeledFrame>> calibration_samples;
  select::MsboCalibration calibration;
  bool loaded_from_cache = false;
};

/// Builds (or loads) the workbench for "BDD", "Detrac" or "Tokyo".
Result<std::unique_ptr<Workbench>> BuildWorkbench(
    const std::string& dataset_name, const WorkbenchOptions& options);

/// The dataset factory for a name; dies on unknown names.
video::SyntheticDataset MakeDataset(const std::string& dataset_name,
                                    double scale);

}  // namespace vdrift::benchutil

#endif  // VDRIFT_BENCHUTIL_WORKBENCH_H_
