#include "benchutil/metrics_report.h"

#include <cstdio>
#include <cstdlib>

#include "benchutil/table.h"
#include "common/status.h"
#include "obs/openmetrics.h"
#include "obs/report.h"

namespace vdrift::benchutil {

namespace {

// Seconds-scale values span micros to minutes; %.6g keeps both readable.
std::string Num(double value) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.6g", value);
  return buf;
}

}  // namespace

void PrintMetricsTable(const obs::MetricsRegistry& registry) {
  auto counters = registry.Counters();
  auto gauges = registry.Gauges();
  if (!counters.empty() || !gauges.empty()) {
    Table scalars({"metric", "value"});
    for (const auto& [name, value] : counters) {
      scalars.AddRow({name, std::to_string(value)});
    }
    for (const auto& [name, value] : gauges) {
      scalars.AddRow({name, Num(value)});
    }
    Banner("metrics: counters & gauges");
    scalars.Print();
  }
  auto histograms = registry.Histograms();
  if (!histograms.empty()) {
    Table dist({"histogram", "count", "mean", "p50", "p90", "p99", "sum"});
    for (const auto& [name, snap] : histograms) {
      if (snap.count == 0) {
        // An empty distribution has no shape; "-" beats a fake 0.
        dist.AddRow({name, "0", "-", "-", "-", "-", Num(snap.sum)});
        continue;
      }
      dist.AddRow({name, std::to_string(snap.count), Num(snap.Mean()),
                   Num(snap.Quantile(0.5)), Num(snap.Quantile(0.9)),
                   Num(snap.Quantile(0.99)), Num(snap.sum)});
    }
    Banner("metrics: latency/value histograms");
    dist.Print();
  }
}

std::string EmitMetricsJson(const obs::MetricsRegistry& registry,
                            const obs::EpisodeRecorder* episodes,
                            const std::string& default_path) {
  return EmitMetricsJson(registry, episodes, nullptr, default_path);
}

std::string EmitMetricsJson(const obs::MetricsRegistry& registry,
                            const obs::EpisodeRecorder* episodes,
                            const obs::HealthWatchdog* watchdog,
                            const std::string& default_path) {
  // vdrift-lint: allow(no-ambient-nondeterminism): documented export knob
  const char* override_path = std::getenv("VDRIFT_METRICS_JSON");
  std::string path =
      override_path != nullptr ? override_path : default_path;
  Status status = obs::WriteMetricsJson(registry, episodes, watchdog, path);
  if (!status.ok()) {
    std::fprintf(stderr, "metrics report not written: %s\n",
                 status.ToString().c_str());
    return "";
  }
  std::printf("metrics report written to %s\n", path.c_str());
  return path;
}

std::string EmitOpenMetrics(const obs::MetricsRegistry& registry) {
  // vdrift-lint: allow(no-ambient-nondeterminism): documented export knob
  const char* path = std::getenv("VDRIFT_METRICS_OPENMETRICS");
  if (path == nullptr || path[0] == '\0') return "";
  Status status = obs::WriteOpenMetrics(registry, path);
  if (!status.ok()) {
    std::fprintf(stderr, "openmetrics export not written: %s\n",
                 status.ToString().c_str());
    return "";
  }
  std::printf("openmetrics export written to %s\n", path);
  return path;
}

}  // namespace vdrift::benchutil
