#include "benchutil/bench_harness.h"

#include <cstdio>
#include <cstdlib>
#include <ctime>
#include <fstream>

#include "common/logging.h"
#include "obs/json.h"
#include "obs/timer.h"
#include "obs/trace_log.h"

namespace vdrift::benchutil {

namespace {

/// Raw repeat-level samples kept per stage. Repeat()-driven stages record
/// a handful; this bound only matters when a caller routes per-frame
/// timings through RecordStageSeconds — the summary histogram stays
/// exact, the raw tail is dropped.
constexpr size_t kMaxRawSamplesPerStage = 4096;

bool EnvFlagSet(const char* name) {
  // vdrift-lint: allow(no-ambient-nondeterminism): bench env-knob chokepoint
  const char* value = std::getenv(name);
  return value != nullptr && value[0] != '\0' &&
         std::string(value) != "0";
}

long EnvLongOr(const char* name, long fallback) {
  // vdrift-lint: allow(no-ambient-nondeterminism): bench env-knob chokepoint
  const char* value = std::getenv(name);
  if (value == nullptr || value[0] == '\0') return fallback;
  char* end = nullptr;
  long parsed = std::strtol(value, &end, 10);
  if (end == value) {
    VDRIFT_LOG_WARNING << "ignoring unparsable " << name << "=" << value;
    return fallback;
  }
  return parsed;
}

std::string EnvStringOr(const char* name, const std::string& fallback) {
  // vdrift-lint: allow(no-ambient-nondeterminism): bench env-knob chokepoint
  const char* value = std::getenv(name);
  return value != nullptr && value[0] != '\0' ? value : fallback;
}

void MergeSnapshot(obs::Histogram::Snapshot* into,
                   const obs::Histogram::Snapshot& from) {
  if (from.count == 0) return;
  if (into->count == 0) {
    *into = from;
    return;
  }
  if (into->buckets.size() == from.buckets.size()) {
    for (size_t i = 0; i < from.buckets.size(); ++i) {
      into->buckets[i] += from.buckets[i];
    }
  } else {
    // Layout mismatch: quantiles of the merge are undefined, but totals
    // stay exact — keep them and say so rather than silently dropping.
    VDRIFT_LOG_WARNING
        << "merging stage snapshots with different bucket layouts; "
           "quantiles reflect only the first layout";
  }
  into->count += from.count;
  into->sum += from.sum;
  if (from.min < into->min) into->min = from.min;
  if (from.max > into->max) into->max = from.max;
}

double StageFps(const obs::Histogram::Snapshot& snap) {
  if (snap.count == 0 || snap.sum <= 0.0) return 0.0;
  return static_cast<double>(snap.count) / snap.sum;
}

/// The headline throughput: an explicit override wins, else the primary
/// stage's fps, else the fps of the busiest stage.
double HeadlineThroughput(
    const std::map<std::string, obs::Histogram::Snapshot>& stages,
    const std::string& primary_stage, double override_fps) {
  if (override_fps >= 0.0) return override_fps;
  const obs::Histogram::Snapshot* headline = nullptr;
  auto primary = stages.find(primary_stage);
  if (!primary_stage.empty() && primary != stages.end()) {
    headline = &primary->second;
  } else {
    for (const auto& [name, snap] : stages) {
      if (headline == nullptr || snap.count > headline->count) {
        headline = &snap;
      }
    }
  }
  return headline != nullptr ? StageFps(*headline) : 0.0;
}

}  // namespace

std::string GitRevision() {
  std::string rev = EnvStringOr("VDRIFT_GIT_REV", "");
  if (!rev.empty()) return rev;
  FILE* pipe = ::popen("git rev-parse --short=12 HEAD 2>/dev/null", "r");
  if (pipe != nullptr) {
    char buf[64] = {0};
    if (std::fgets(buf, sizeof(buf), pipe) != nullptr) {
      rev = buf;
      while (!rev.empty() && (rev.back() == '\n' || rev.back() == '\r')) {
        rev.pop_back();
      }
    }
    ::pclose(pipe);
  }
  return rev.empty() ? "unknown" : rev;
}

BenchHarness::BenchHarness(const std::string& name) {
  config_.name = name;
  config_.smoke = EnvFlagSet("VDRIFT_BENCH_SMOKE");
  if (config_.smoke) {
    // Smoke mode is a liveness gate for CI, not a measurement: one pass,
    // no warmup, and the smallest dataset unless told otherwise.
    config_.repeats = 1;
    config_.warmup = 0;
    config_.dataset_filter = "Tokyo";
  }
  config_.repeats = static_cast<int>(
      EnvLongOr("VDRIFT_BENCH_REPEATS", config_.repeats));
  if (config_.repeats < 1) config_.repeats = 1;
  config_.warmup = static_cast<int>(
      EnvLongOr("VDRIFT_BENCH_WARMUP", config_.warmup));
  if (config_.warmup < 0) config_.warmup = 0;
  config_.seed = static_cast<uint64_t>(EnvLongOr(
      "VDRIFT_BENCH_SEED", static_cast<long>(config_.seed)));
  config_.dataset_filter =
      EnvStringOr("VDRIFT_BENCH_DATASET", config_.dataset_filter);
  config_.json_path =
      EnvStringOr("VDRIFT_BENCH_JSON", "BENCH_" + name + ".json");
  std::string ledger = EnvStringOr("VDRIFT_BENCH_LEDGER", "");
  if (!ledger.empty()) {
    // A .jsonl path is the ledger file itself; anything else is a
    // directory holding one ledger per bench.
    const std::string suffix = ".jsonl";
    bool is_file = ledger.size() > suffix.size() &&
                   ledger.compare(ledger.size() - suffix.size(),
                                  suffix.size(), suffix) == 0;
    config_.ledger_path = is_file ? ledger : ledger + "/" + name + ".jsonl";
  }
}

bool BenchHarness::ShouldRunDataset(const std::string& dataset) const {
  return config_.dataset_filter.empty() || config_.dataset_filter == dataset;
}

WorkbenchOptions BenchHarness::MakeWorkbenchOptions() const {
  WorkbenchOptions options = DefaultWorkbenchOptions();
  options.seed = config_.seed;
  if (config_.smoke) {
    // Seconds-scale training: tiny streams (Scaled() floors each sequence
    // at 64 frames), shallow models, and a cache dir of its own so smoke
    // artifacts never shadow full-scale ones.
    options.dataset_scale = 0.002;
    options.train_frames = 48;
    options.calibration_sample = 8;
    options.provision.profile.sigma_size = 64;
    options.provision.profile.trainer.epochs = 2;
    options.provision.classifier_train.epochs = 2;
    options.provision.ensemble_size = 2;
    options.provision.classifier_filters = 6;
    options.cache_dir = "vdrift_cache_smoke";
  }
  return options;
}

obs::Histogram& BenchHarness::StageHistogram(const std::string& stage) {
  return registry_.GetHistogram(stage);
}

void BenchHarness::RecordStageSeconds(const std::string& stage,
                                      double seconds) {
  StageHistogram(stage).Record(seconds);
  std::vector<double>& raw = samples_[stage];
  if (raw.size() < kMaxRawSamplesPerStage) raw.push_back(seconds);
}

void BenchHarness::Repeat(const std::string& stage,
                          const std::function<void()>& fn) {
  for (int i = 0; i < config_.warmup; ++i) fn();
  for (int i = 0; i < config_.repeats; ++i) {
    double start = obs::MonotonicSeconds();
    fn();
    RecordStageSeconds(stage, obs::MonotonicSeconds() - start);
  }
}

void BenchHarness::ImportStage(const std::string& stage,
                               const obs::Histogram::Snapshot& snapshot) {
  MergeSnapshot(&imported_[stage], snapshot);
}

void BenchHarness::SetLabel(const std::string& key,
                            const std::string& value) {
  labels_[key] = value;
}

void BenchHarness::SetPrimaryStage(const std::string& stage) {
  primary_stage_ = stage;
}

void BenchHarness::SetThroughputFps(double fps) {
  throughput_override_ = fps;
}

std::map<std::string, obs::Histogram::Snapshot> BenchHarness::MergedStages()
    const {
  // Assemble the full stage map: harness histograms plus imported
  // snapshots (std::map keeps every level in sorted key order, the
  // stability contract tools/compare_bench.py and tests rely on).
  std::map<std::string, obs::Histogram::Snapshot> stages;
  for (const auto& [name, snap] : registry_.Histograms()) {
    stages[name] = snap;
  }
  for (const auto& [name, snap] : imported_) {
    MergeSnapshot(&stages[name], snap);
  }
  return stages;
}

const std::vector<double>& BenchHarness::StageSamples(
    const std::string& stage) const {
  static const std::vector<double> kEmpty;
  auto it = samples_.find(stage);
  return it == samples_.end() ? kEmpty : it->second;
}

std::string BenchHarness::ReportJson() const {
  std::map<std::string, obs::Histogram::Snapshot> stages = MergedStages();

  auto global_counters = obs::Global().Counters();
  int64_t flops_total = 0;
  int64_t bytes_total = 0;
  for (const auto& [name, value] : global_counters) {
    if (name.rfind("vdrift.ops.", 0) != 0) continue;
    if (name.size() >= 6 && name.compare(name.size() - 6, 6, ".flops") == 0) {
      flops_total += value;
    } else if (name.size() >= 6 &&
               name.compare(name.size() - 6, 6, ".bytes") == 0) {
      bytes_total += value;
    }
  }

  double throughput =
      HeadlineThroughput(stages, primary_stage_, throughput_override_);

  std::string out = "{";
  out += "\"bytes_total\":" + std::to_string(bytes_total);
  out += ",\"config\":{";
  out += "\"dataset_filter\":\"" + obs::json::Escape(config_.dataset_filter) +
         "\"";
  out += ",\"repeats\":" + std::to_string(config_.repeats);
  out += ",\"seed\":" + std::to_string(config_.seed);
  out += std::string(",\"smoke\":") + (config_.smoke ? "true" : "false");
  out += ",\"warmup\":" + std::to_string(config_.warmup);
  out += "}";
  out += ",\"counters\":{";
  bool first = true;
  for (const auto& [name, value] : global_counters) {
    if (!first) out += ",";
    first = false;
    out += "\"" + obs::json::Escape(name) + "\":" + std::to_string(value);
  }
  out += "}";
  out += ",\"flops_total\":" + std::to_string(flops_total);
  out += ",\"git_rev\":\"" + obs::json::Escape(GitRevision()) + "\"";
  out += ",\"kernels\":{";
  first = true;
  for (const auto& [name, kernel] : CollectKernelStats(obs::Global())) {
    if (!first) out += ",";
    first = false;
    out += "\"" + obs::json::Escape(name) + "\":{";
    out += "\"bytes\":" + std::to_string(kernel.bytes);
    out += ",\"calls\":" + std::to_string(kernel.calls);
    out += ",\"flops\":" + std::to_string(kernel.flops);
    out += ",\"seconds\":" + obs::json::FormatDouble(kernel.seconds);
    out += "}";
  }
  out += "}";
  out += ",\"labels\":{";
  first = true;
  for (const auto& [key, value] : labels_) {
    if (!first) out += ",";
    first = false;
    out += "\"" + obs::json::Escape(key) + "\":\"" + obs::json::Escape(value) +
           "\"";
  }
  out += "}";
  out += ",\"machine\":" + MachineFingerprint::Detect().ToJson();
  out += ",\"name\":\"" + obs::json::Escape(config_.name) + "\"";
  out += ",\"stages\":{";
  first = true;
  for (const auto& [name, snap] : stages) {
    if (!first) out += ",";
    first = false;
    out += "\"" + obs::json::Escape(name) + "\":{";
    out += "\"count\":" + std::to_string(snap.count);
    out += ",\"fps\":" + obs::json::FormatDouble(StageFps(snap));
    // Shape keys only exist when the stage recorded something: a 0-count
    // stage's "p99 = 0" would be indistinguishable from a real 0s p99.
    if (snap.count > 0) {
      out += ",\"max\":" + obs::json::FormatDouble(snap.max);
      out += ",\"mean\":" + obs::json::FormatDouble(snap.Mean());
      out += ",\"min\":" + obs::json::FormatDouble(snap.min);
      out += ",\"p50\":" + obs::json::FormatDouble(snap.Quantile(0.50));
      out += ",\"p90\":" + obs::json::FormatDouble(snap.Quantile(0.90));
      out += ",\"p99\":" + obs::json::FormatDouble(snap.Quantile(0.99));
    }
    // Raw repeat-level wall times, in execution order: the unit the
    // statistical gate bootstraps over. Absent for histogram-only stages.
    if (const std::vector<double>& raw = StageSamples(name); !raw.empty()) {
      out += ",\"samples\":[";
      for (size_t i = 0; i < raw.size(); ++i) {
        if (i > 0) out += ",";
        out += obs::json::FormatDouble(raw[i]);
      }
      out += "]";
    }
    out += ",\"sum_seconds\":" + obs::json::FormatDouble(snap.sum);
    out += "}";
  }
  out += "}";
  out += ",\"throughput_fps\":" + obs::json::FormatDouble(throughput);
  out += "}";
  return out;
}

LedgerRecord BenchHarness::MakeLedgerRecord() const {
  LedgerRecord record;
  record.bench = config_.name;
  record.git_rev = GitRevision();
  // vdrift-lint: allow(no-ambient-nondeterminism): run provenance stamp,
  // never fed back into any computation.
  record.unix_time = static_cast<int64_t>(::time(nullptr));
  record.machine = MachineFingerprint::Detect();
  record.env["dataset_filter"] = config_.dataset_filter;
  record.env["kernel_profile"] =
      obs::KernelProfilingEnabled() ? "1" : "0";
  record.env["repeats"] = std::to_string(config_.repeats);
  record.env["seed"] = std::to_string(config_.seed);
  record.env["smoke"] = config_.smoke ? "1" : "0";
  record.env["threads"] =
      std::to_string(EnvLongOr("VDRIFT_THREADS", 1));
  record.env["warmup"] = std::to_string(config_.warmup);

  std::map<std::string, obs::Histogram::Snapshot> stages = MergedStages();
  for (const auto& [name, snap] : stages) {
    LedgerStage& stage = record.stages[name];
    stage.count = snap.count;
    stage.sum = snap.sum;
    if (snap.count > 0) {
      stage.min = snap.min;
      stage.max = snap.max;
      stage.p50 = snap.Quantile(0.50);
      stage.p90 = snap.Quantile(0.90);
      stage.p99 = snap.Quantile(0.99);
    }
    stage.samples = StageSamples(name);
  }
  record.kernels = CollectKernelStats(obs::Global());
  record.throughput_fps =
      HeadlineThroughput(stages, primary_stage_, throughput_override_);
  return record;
}

std::string BenchHarness::WriteReport() const {
  std::ofstream out(config_.json_path, std::ios::trunc);
  if (!out) {
    std::fprintf(stderr, "bench report not written: cannot open %s\n",
                 config_.json_path.c_str());
    return "";
  }
  out << ReportJson() << "\n";
  out.flush();
  if (!out) {
    std::fprintf(stderr, "bench report not written: write failed on %s\n",
                 config_.json_path.c_str());
    return "";
  }
  std::printf("bench report written to %s\n", config_.json_path.c_str());
  if (!config_.ledger_path.empty()) {
    Status status = AppendLedgerRecord(config_.ledger_path,
                                       MakeLedgerRecord());
    if (status.ok()) {
      std::printf("bench ledger appended to %s\n",
                  config_.ledger_path.c_str());
    } else {
      std::fprintf(stderr, "bench ledger not appended: %s\n",
                   status.ToString().c_str());
    }
  }
  return config_.json_path;
}

}  // namespace vdrift::benchutil
