#include "benchutil/workbench.h"

#include <cstdint>
#include <filesystem>
#include <fstream>

#include "common/logging.h"
#include "core/ensemble.h"
#include "stats/moments.h"
#include "detect/image_classifier.h"
#include "nn/serialize.h"
#include "video/frame_stats.h"
#include "video/stream.h"

namespace vdrift::benchutil {

namespace {

constexpr uint32_t kCacheMagic = 0x56444243;  // "VDBC"
constexpr uint32_t kCacheVersion = 4;

template <typename T>
void WritePod(std::ostream* out, const T& value) {
  out->write(reinterpret_cast<const char*>(&value), sizeof(T));
}

template <typename T>
bool ReadPod(std::istream* in, T* value) {
  in->read(reinterpret_cast<char*>(value), sizeof(T));
  return in->good();
}

void WriteString(std::ostream* out, const std::string& s) {
  WritePod<uint64_t>(out, s.size());
  out->write(s.data(), static_cast<std::streamsize>(s.size()));
}

bool ReadString(std::istream* in, std::string* s) {
  uint64_t n = 0;
  if (!ReadPod(in, &n) || n > (1u << 20)) return false;
  s->resize(n);
  in->read(s->data(), static_cast<std::streamsize>(n));
  return in->good();
}

void WriteFloats(std::ostream* out, const std::vector<float>& v) {
  WritePod<uint64_t>(out, v.size());
  out->write(reinterpret_cast<const char*>(v.data()),
             static_cast<std::streamsize>(v.size() * sizeof(float)));
}

bool ReadFloats(std::istream* in, std::vector<float>* v) {
  uint64_t n = 0;
  if (!ReadPod(in, &n) || n > (1u << 28)) return false;
  v->resize(n);
  in->read(reinterpret_cast<char*>(v->data()),
           static_cast<std::streamsize>(n * sizeof(float)));
  return in->good();
}

detect::ClassifierConfig CountConfig(const pipeline::ProvisionOptions& p) {
  detect::ClassifierConfig config;
  config.image_size = p.profile.vae.image_size;
  config.channels = p.profile.vae.channels;
  config.num_classes = p.count_classes;
  config.base_filters = p.classifier_filters;
  return config;
}

}  // namespace

WorkbenchOptions DefaultWorkbenchOptions() {
  WorkbenchOptions options;
  options.provision = pipeline::DefaultProvisionOptions();
  options.provision.profile.trainer.epochs = 18;
  options.provision.classifier_train.epochs = 18;
  options.provision.classifier_filters = 12;
  // L = 5 (paper: typical 3-10): averaging five members keeps the window
  // Brier stable enough for reliable MSBO margins at this model scale.
  options.provision.ensemble_size = 5;
  return options;
}

video::SyntheticDataset MakeDataset(const std::string& dataset_name,
                                    double scale) {
  if (dataset_name == "BDD") return video::MakeBddSynthetic(scale);
  if (dataset_name == "Detrac") return video::MakeDetracSynthetic(scale);
  if (dataset_name == "Tokyo") return video::MakeTokyoSynthetic(scale);
  VDRIFT_LOG_FATAL << "unknown dataset " << dataset_name;
  return video::MakeBddSynthetic(scale);  // unreachable
}

namespace {

Status SaveWorkbench(const Workbench& bench, const WorkbenchOptions& options,
                     const std::string& path) {
  std::ofstream out(path, std::ios::binary);
  if (!out.good()) return Status::IoError("cannot open cache for writing");
  WritePod(&out, kCacheMagic);
  WritePod(&out, kCacheVersion);
  WritePod<int32_t>(&out, bench.registry.size());
  for (int i = 0; i < bench.registry.size(); ++i) {
    const select::ModelEntry& entry = bench.registry.at(i);
    WriteString(&out, entry.name);
    // VAE parameters: serialize via a temporary Sequential-like wrapper.
    // The Vae exposes Params() directly, so write them inline.
    std::vector<nn::Parameter*> vae_params = entry.profile->vae()->Params();
    WritePod<uint64_t>(&out, vae_params.size());
    for (nn::Parameter* p : vae_params) {
      std::vector<float> values(p->value.data(),
                                p->value.data() + p->value.size());
      WriteFloats(&out, values);
    }
    // Scoring-embedding standardisation: re-derived on load (deterministic
    // from the regenerated training frames), so only the point set needs
    // storing.
    const conformal::PointSet& sigma = entry.profile->sigma();
    WritePod<int32_t>(&out, sigma.k());
    WritePod<int32_t>(&out, sigma.size());
    WritePod<int32_t>(&out, sigma.dim());
    for (const auto& point : sigma.points()) WriteFloats(&out, point);
    // Ensemble members (member 0 is also the deployed count model).
    WritePod<int32_t>(&out, entry.ensemble->size());
    for (int l = 0; l < entry.ensemble->size(); ++l) {
      auto* member =
          dynamic_cast<detect::ImageClassifier*>(entry.ensemble->member(l).get());
      if (member == nullptr) {
        return Status::Internal("cache only supports ImageClassifier members");
      }
      VDRIFT_RETURN_NOT_OK(nn::SaveParameters(member->net(), &out));
    }
    // Predicate model.
    auto* predicate =
        dynamic_cast<detect::ImageClassifier*>(entry.predicate_model.get());
    WritePod<int32_t>(&out, predicate != nullptr ? 1 : 0);
    if (predicate != nullptr) {
      VDRIFT_RETURN_NOT_OK(nn::SaveParameters(predicate->net(), &out));
    }
  }
  if (!out.good()) return Status::IoError("cache write failed");
  return Status::OK();
}

// Rebuilds one model entry from the cache stream. The architectures are
// reconstructed from `options` (with throwaway random init) and then
// overwritten with the stored parameters.
Result<select::ModelEntry> LoadEntry(
    std::istream* in, const WorkbenchOptions& options,
    const std::vector<video::Frame>& training_frames, stats::Rng* rng) {
  const pipeline::ProvisionOptions& p = options.provision;
  select::ModelEntry entry;
  if (!ReadString(in, &entry.name)) return Status::IoError("bad cache name");
  auto vae = std::make_shared<vae::Vae>(p.profile.vae, rng);
  uint64_t vae_param_count = 0;
  if (!ReadPod(in, &vae_param_count)) return Status::IoError("bad cache");
  std::vector<nn::Parameter*> vae_params = vae->Params();
  if (vae_param_count != vae_params.size()) {
    return Status::InvalidArgument("cache/architecture mismatch (VAE)");
  }
  for (nn::Parameter* param : vae_params) {
    std::vector<float> values;
    if (!ReadFloats(in, &values) ||
        static_cast<int64_t>(values.size()) != param->value.size()) {
      return Status::InvalidArgument("cache/architecture mismatch (VAE)");
    }
    std::copy(values.begin(), values.end(), param->value.data());
  }
  int32_t k = 0;
  int32_t n = 0;
  int32_t dim = 0;
  if (!ReadPod(in, &k) || !ReadPod(in, &n) || !ReadPod(in, &dim)) {
    return Status::IoError("bad cache point set");
  }
  std::vector<std::vector<float>> points;
  points.reserve(static_cast<size_t>(n));
  for (int32_t i = 0; i < n; ++i) {
    std::vector<float> point;
    if (!ReadFloats(in, &point) ||
        static_cast<int32_t>(point.size()) != dim) {
      return Status::IoError("bad cache point");
    }
    points.push_back(std::move(point));
  }
  VDRIFT_ASSIGN_OR_RETURN(conformal::PointSet sigma,
                          conformal::PointSet::Build(std::move(points), k));
  // Re-derive the standardisation parameters from the (deterministic)
  // training frames, matching DistributionProfile::Build.
  std::vector<float> stats_mean(video::kNumFrameStats, 0.0f);
  std::vector<float> stats_scale(video::kNumFrameStats, 1.0f);
  if (p.profile.stats_weight != 0.0) {
    std::vector<stats::RunningMoments> moments(video::kNumFrameStats);
    for (const video::Frame& frame : training_frames) {
      std::vector<float> s = video::GlobalFrameStats(frame.pixels);
      for (int i = 0; i < video::kNumFrameStats; ++i) {
        moments[static_cast<size_t>(i)].Add(s[static_cast<size_t>(i)]);
      }
    }
    for (int i = 0; i < video::kNumFrameStats; ++i) {
      stats_mean[static_cast<size_t>(i)] =
          static_cast<float>(moments[static_cast<size_t>(i)].mean());
      stats_scale[static_cast<size_t>(i)] = std::max(
          0.01f, static_cast<float>(moments[static_cast<size_t>(i)].stddev()));
    }
  }
  entry.profile = std::make_shared<conformal::DistributionProfile>(
      entry.name, vae, std::move(sigma), p.profile.stats_weight,
      std::move(stats_mean), std::move(stats_scale));

  int32_t ensemble_size = 0;
  if (!ReadPod(in, &ensemble_size) || ensemble_size < 1) {
    return Status::IoError("bad cache ensemble");
  }
  std::vector<std::shared_ptr<nn::ProbabilisticClassifier>> members;
  for (int32_t l = 0; l < ensemble_size; ++l) {
    auto member =
        std::make_shared<detect::ImageClassifier>(CountConfig(p), rng);
    VDRIFT_RETURN_NOT_OK(nn::LoadParameters(member->net(), in));
    members.push_back(std::move(member));
  }
  entry.count_model = members.front();
  VDRIFT_ASSIGN_OR_RETURN(select::DeepEnsemble ensemble,
                          select::DeepEnsemble::Make(std::move(members)));
  entry.ensemble = std::make_shared<select::DeepEnsemble>(std::move(ensemble));
  int32_t has_predicate = 0;
  if (!ReadPod(in, &has_predicate)) return Status::IoError("bad cache");
  if (has_predicate != 0) {
    detect::ClassifierConfig pred_config = CountConfig(p);
    pred_config.num_classes = 2;
    auto predicate =
        std::make_shared<detect::ImageClassifier>(pred_config, rng);
    VDRIFT_RETURN_NOT_OK(nn::LoadParameters(predicate->net(), in));
    entry.predicate_model = std::move(predicate);
  }
  return entry;
}

}  // namespace

Result<std::unique_ptr<Workbench>> BuildWorkbench(
    const std::string& dataset_name, const WorkbenchOptions& options) {
  auto bench = std::make_unique<Workbench>();
  bench->dataset = MakeDataset(dataset_name, options.dataset_scale);
  stats::Rng rng(options.seed);
  // Training frames are regenerated deterministically in either path.
  for (size_t i = 0; i < bench->dataset.segments.size(); ++i) {
    bench->training_frames.push_back(video::GenerateFrames(
        bench->dataset.segments[i].spec, options.train_frames,
        bench->dataset.image_size, options.seed + 1000 + i));
  }

  std::string cache_path;
  if (!options.cache_dir.empty()) {
    std::error_code ec;
    std::filesystem::create_directories(options.cache_dir, ec);
    cache_path = options.cache_dir + "/" + dataset_name + "_models_v" +
                 std::to_string(kCacheVersion) + ".bin";
  }

  bool loaded = false;
  if (!cache_path.empty() && std::filesystem::exists(cache_path)) {
    std::ifstream in(cache_path, std::ios::binary);
    uint32_t magic = 0;
    uint32_t version = 0;
    int32_t count = 0;
    if (in.good() && ReadPod(&in, &magic) && magic == kCacheMagic &&
        ReadPod(&in, &version) && version == kCacheVersion &&
        ReadPod(&in, &count) &&
        count == static_cast<int32_t>(bench->dataset.segments.size())) {
      loaded = true;
      for (int32_t i = 0; i < count && loaded; ++i) {
        Result<select::ModelEntry> entry = LoadEntry(
            &in, options, bench->training_frames[static_cast<size_t>(i)],
            &rng);
        if (!entry.ok()) {
          loaded = false;
          break;
        }
        bench->registry.Add(std::move(entry).value());
      }
    }
    if (!loaded) {
      bench->registry = select::ModelRegistry();
      VDRIFT_LOG_WARNING << "model cache " << cache_path
                         << " unusable; retraining";
    }
  }

  if (!loaded) {
    for (size_t i = 0; i < bench->dataset.segments.size(); ++i) {
      VDRIFT_ASSIGN_OR_RETURN(
          select::ModelEntry entry,
          pipeline::ProvisionModel(bench->dataset.segments[i].spec.name,
                                   bench->training_frames[i],
                                   options.provision, &rng));
      bench->registry.Add(std::move(entry));
    }
    if (!cache_path.empty()) {
      Status save = SaveWorkbench(*bench, options, cache_path);
      if (!save.ok()) {
        VDRIFT_LOG_WARNING << "failed to write model cache: "
                           << save.ToString();
      }
    }
  }
  bench->loaded_from_cache = loaded;

  // Calibration samples + MSBO calibration are cheap; always recomputed.
  stats::Rng sample_rng(options.seed + 77);
  for (size_t i = 0; i < bench->training_frames.size(); ++i) {
    bench->calibration_samples.push_back(pipeline::MakeLabeledSample(
        bench->training_frames[i], options.provision.count_classes,
        options.calibration_sample, &sample_rng));
  }
  VDRIFT_ASSIGN_OR_RETURN(
      bench->calibration,
      select::CalibrateMsbo(bench->registry, bench->calibration_samples));
  return bench;
}

}  // namespace vdrift::benchutil
