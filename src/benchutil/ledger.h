#ifndef VDRIFT_BENCHUTIL_LEDGER_H_
#define VDRIFT_BENCHUTIL_LEDGER_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "obs/json.h"
#include "obs/metrics.h"

namespace vdrift::benchutil {

/// \brief Where a bench run happened: the provenance fields that decide
/// whether two perf numbers are comparable at all.
///
/// PR 5's 28% msbo_select swing and PR 7's classifier_predict false
/// positive were both machine/layout effects, not code changes — a verdict
/// without the machine identity attached is a guess. The fingerprint is
/// recorded in every ledger record and BENCH report; the statistical gate
/// (tools/compare_bench.py) warns when it compares across fingerprints.
struct MachineFingerprint {
  std::string cpu_model;  ///< /proc/cpuinfo "model name" (or "unknown").
  int cores = 0;          ///< std::thread::hardware_concurrency().
  std::string governor;   ///< cpufreq scaling_governor (or "unknown").
  long page_size = 0;     ///< sysconf(_SC_PAGESIZE).

  /// Reads the identity of the machine we are running on.
  static MachineFingerprint Detect();
  /// Parses the "machine" object of a ledger record / BENCH report.
  static MachineFingerprint FromJson(const obs::json::Value& value);

  /// Short stable content hash of the fields — the id two runs must share
  /// for their latencies to be comparable.
  std::string Id() const;
  /// {"cores":...,"cpu_model":"...","governor":"...","id":"...",
  ///  "page_size":...} (sorted keys).
  std::string ToJson() const;

  bool operator==(const MachineFingerprint& other) const {
    return cpu_model == other.cpu_model && cores == other.cores &&
           governor == other.governor && page_size == other.page_size;
  }
};

/// Per-stage latency evidence of one run. `samples` holds the raw
/// repeat-level wall times (seconds, in execution order) when the stage
/// was driven by BenchHarness::Repeat / RecordStageSeconds — the unit the
/// statistical gate bootstraps over. Histogram-imported stages (per-frame
/// timers) carry only the summary; their repeat dimension is the ledger
/// history itself.
struct LedgerStage {
  int64_t count = 0;
  double sum = 0.0;
  double min = 0.0;
  double max = 0.0;
  double p50 = 0.0;
  double p90 = 0.0;
  double p99 = 0.0;
  std::vector<double> samples;
};

/// Per-kernel op-probe attribution of one run (from the global
/// vdrift.ops.<scope>.<op>.{calls,flops,bytes} counters and .seconds
/// histogram). `seconds` is 0 when kernel profiling was off for the run.
struct LedgerKernel {
  int64_t calls = 0;
  int64_t flops = 0;
  int64_t bytes = 0;
  double seconds = 0.0;
};

/// \brief One appended line of a BENCH run ledger.
///
/// Every harness run appends one record (env VDRIFT_BENCH_LEDGER), so the
/// ledger accumulates the run-to-run distribution a single committed
/// baseline cannot express: the statistical gate estimates machine noise
/// from this history instead of trusting any single run.
struct LedgerRecord {
  int schema = 1;
  std::string bench;    ///< Harness name, e.g. "table6_detection_time".
  std::string git_rev;
  int64_t unix_time = 0;  ///< Wall-clock provenance (0 = unknown).
  MachineFingerprint machine;
  /// Resolved env knobs of the run (threads, smoke, repeats, warmup,
  /// seed, dataset_filter, kernel_profile).
  std::map<std::string, std::string> env;
  std::map<std::string, LedgerStage> stages;
  std::map<std::string, LedgerKernel> kernels;
  double throughput_fps = 0.0;

  /// One JSON line, sorted keys, no trailing newline.
  std::string ToJsonLine() const;
  static Result<LedgerRecord> FromJson(const obs::json::Value& value);
  static Result<LedgerRecord> FromJsonLine(const std::string& line);
};

/// A parsed ledger file. Corrupt lines (torn appends, truncation) are
/// skipped and counted, never fatal — a crash mid-append must not brick
/// the history.
struct LedgerHistory {
  std::vector<LedgerRecord> records;
  int corrupt_lines = 0;
};

/// Appends `record` as one line to `path`, creating parent directories as
/// needed. Appends are line-atomic in practice (single write + newline).
[[nodiscard]] Status AppendLedgerRecord(const std::string& path,
                                        const LedgerRecord& record);

/// Reads every parsable record of `path` (see LedgerHistory for the
/// corrupt-line contract). Missing file is an error.
Result<LedgerHistory> ReadLedger(const std::string& path);

/// Harvests per-kernel stats from `registry`'s vdrift.ops.* instruments,
/// keyed "<scope>.<op>".
std::map<std::string, LedgerKernel> CollectKernelStats(
    const obs::MetricsRegistry& registry);

}  // namespace vdrift::benchutil

#endif  // VDRIFT_BENCHUTIL_LEDGER_H_
