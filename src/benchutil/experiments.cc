#include "benchutil/experiments.h"

#include "obs/timer.h"

namespace vdrift::benchutil {

LatencyResult MeasureDiLatency(const conformal::DistributionProfile& source,
                               const std::vector<video::Frame>& post_drift,
                               const conformal::DriftInspectorConfig& config,
                               uint64_t seed) {
  conformal::DriftInspector inspector(&source, config, seed);
  LatencyResult result;
  double start = obs::MonotonicSeconds();
  for (size_t i = 0; i < post_drift.size(); ++i) {
    if (inspector.Observe(post_drift[i].pixels).drift) {
      result.frames_to_detect = static_cast<int>(i) + 1;
      break;
    }
  }
  result.seconds = obs::MonotonicSeconds() - start;
  return result;
}

LatencyResult MeasureOdinLatency(
    const conformal::DistributionProfile& source,
    const std::vector<video::Frame>& source_training,
    const std::vector<video::Frame>& post_drift,
    const baseline::OdinConfig& config) {
  std::vector<std::vector<float>> latents;
  latents.reserve(source_training.size());
  for (const video::Frame& f : source_training) {
    latents.push_back(source.Encode(f.pixels));
  }
  baseline::OdinDetect odin(config, static_cast<int>(latents.front().size()));
  odin.AddPermanentCluster(latents, 0);
  LatencyResult result;
  double start = obs::MonotonicSeconds();
  for (size_t i = 0; i < post_drift.size(); ++i) {
    std::vector<float> z = source.Encode(post_drift[i].pixels);
    if (odin.Observe(z).drift) {
      result.frames_to_detect = static_cast<int>(i) + 1;
      break;
    }
  }
  result.seconds = obs::MonotonicSeconds() - start;
  return result;
}

int CountFalseAlarms(const conformal::DistributionProfile& source,
                     const std::vector<video::Frame>& frames,
                     const conformal::DriftInspectorConfig& config,
                     uint64_t seed) {
  conformal::DriftInspector inspector(&source, config, seed);
  int alarms = 0;
  for (const video::Frame& f : frames) {
    if (inspector.Observe(f.pixels).drift) {
      ++alarms;
      inspector.Reset();
    }
  }
  return alarms;
}

}  // namespace vdrift::benchutil
