#include "detect/image_classifier.h"

#include <algorithm>
#include <cmath>
#include <memory>

#include "common/logging.h"
#include "nn/layers.h"
#include "nn/loss.h"
#include "nn/optimizer.h"
#include "nn/serialize.h"
#include "obs/metrics.h"
#include "obs/timer.h"
#include "vae/vae.h"

namespace vdrift::detect {

using tensor::Shape;
using tensor::Tensor;

ImageClassifier::ImageClassifier(const ClassifierConfig& config,
                                 stats::Rng* rng)
    : config_(config),
      dropout_rng_(std::make_unique<stats::Rng>(rng->Split())) {
  // vdrift-lint: allow(no-data-dependent-check): ctor config contract
  VDRIFT_CHECK(config.image_size % 4 == 0);
  // vdrift-lint: allow(no-data-dependent-check): ctor config contract
  VDRIFT_CHECK(config.num_classes >= 2);
  int f = config.base_filters;
  int s4 = config.image_size / 4;
  net_.Add<nn::Conv2d>(config.channels, f, 3, 2, 1, rng);
  net_.Add<nn::ReLU>();
  net_.Add<nn::Conv2d>(f, 2 * f, 3, 2, 1, rng);
  net_.Add<nn::ReLU>();
  net_.Add<nn::Conv2d>(2 * f, 2 * f, 3, 1, 1, rng);
  net_.Add<nn::ReLU>();
  net_.Add<nn::Flatten>();
  if (config.dropout_rate > 0.0) {
    dropout_ =
        net_.Add<nn::Dropout>(config.dropout_rate, dropout_rng_.get());
  }
  net_.Add<nn::Linear>(2 * f * s4 * s4, config.num_classes, rng);
}

void ImageClassifier::SetDropoutTraining(bool training) {
  if (dropout_ != nullptr) dropout_->set_training(training);
}

Result<std::vector<double>> ImageClassifier::Train(
    const std::vector<Tensor>& frames, const std::vector<int>& labels,
    const ClassifierTrainConfig& train_config, stats::Rng* rng) {
  if (frames.empty()) {
    return Status::InvalidArgument("classifier training needs frames");
  }
  if (frames.size() != labels.size()) {
    return Status::InvalidArgument("frames/labels size mismatch");
  }
  for (int label : labels) {
    if (label < 0 || label >= config_.num_classes) {
      return Status::OutOfRange("label outside [0, num_classes)");
    }
  }
  SetDropoutTraining(true);
  nn::Adam optimizer(net_.Params(), train_config.learning_rate);
  std::vector<int> order(frames.size());
  for (size_t i = 0; i < order.size(); ++i) order[i] = static_cast<int>(i);
  std::vector<double> epoch_losses;
  for (int epoch = 0; epoch < train_config.epochs; ++epoch) {
    obs::ScopedTimer epoch_timer(
        &obs::Global().GetHistogram("vdrift.train.classifier.epoch_seconds"));
    rng->Shuffle(&order);
    double total = 0.0;
    int batches = 0;
    for (size_t start = 0; start < order.size();
         start += static_cast<size_t>(train_config.batch_size)) {
      size_t end =
          std::min(order.size(),
                   start + static_cast<size_t>(train_config.batch_size));
      std::vector<Tensor> batch_frames;
      std::vector<int> batch_labels;
      for (size_t i = start; i < end; ++i) {
        batch_frames.push_back(frames[static_cast<size_t>(order[i])]);
        batch_labels.push_back(labels[static_cast<size_t>(order[i])]);
      }
      Tensor batch = vae::StackFrames(batch_frames);
      optimizer.ZeroGrad();
      Tensor logits = net_.Forward(batch);
      nn::LossResult loss = nn::SoftmaxCrossEntropy(logits, batch_labels);
      if (!std::isfinite(loss.loss)) {
        SetDropoutTraining(false);
        return Status::Internal(
            "classifier training loss became non-finite at epoch " +
            std::to_string(epoch));
      }
      net_.Backward(loss.grad);
      optimizer.Step();
      total += loss.loss;
      ++batches;
    }
    epoch_losses.push_back(total / std::max(1, batches));
    obs::Global()
        .GetGauge("vdrift.train.classifier.epoch_loss")
        .Set(epoch_losses.back());
    obs::Global().GetCounter("vdrift.train.classifier.epochs").Increment();
  }
  SetDropoutTraining(false);
  return epoch_losses;
}

Tensor ImageClassifier::ForwardBatch(const Tensor& batch) {
  return net_.Forward(batch);
}

std::vector<float> ImageClassifier::PredictProba(const Tensor& frame) {
  SetDropoutTraining(false);
  Tensor batch = vae::StackFrames({frame});
  Tensor probs = nn::Softmax(net_.Forward(batch));
  return std::vector<float>(probs.data(), probs.data() + probs.size());
}

std::vector<float> ImageClassifier::PredictProbaMcDropout(const Tensor& frame,
                                                          int passes) {
  // vdrift-lint: allow(no-data-dependent-check): API precondition
  VDRIFT_CHECK(passes >= 1);
  if (dropout_ == nullptr) return PredictProba(frame);
  SetDropoutTraining(true);
  Tensor batch = vae::StackFrames({frame});
  std::vector<float> mixture(static_cast<size_t>(config_.num_classes), 0.0f);
  for (int pass = 0; pass < passes; ++pass) {
    Tensor probs = nn::Softmax(net_.Forward(batch));
    for (size_t i = 0; i < mixture.size(); ++i) mixture[i] += probs[static_cast<int64_t>(i)];
  }
  SetDropoutTraining(false);
  float inv = 1.0f / static_cast<float>(passes);
  for (float& v : mixture) v *= inv;
  return mixture;
}

int ImageClassifier::Predict(const Tensor& frame) {
  std::vector<float> probs = PredictProba(frame);
  return static_cast<int>(std::max_element(probs.begin(), probs.end()) -
                          probs.begin());
}

std::shared_ptr<nn::ProbabilisticClassifier> ImageClassifier::Clone() const {
  // Rebuild the architecture with a throwaway RNG (every weight is
  // overwritten by the copy below), then transplant the parameters.
  stats::Rng init_rng(0);
  auto clone = std::make_shared<ImageClassifier>(config_, &init_rng);
  // CopyParameters reads through Layer::Params(), which is non-const on
  // the Layer interface; the source network is not mutated.
  ImageClassifier* self = const_cast<ImageClassifier*>(this);
  Status copied = nn::CopyParameters(&self->net_, clone->net());
  // vdrift-lint: allow(no-data-dependent-check): same-architecture nets
  VDRIFT_CHECK(copied.ok()) << copied.ToString();
  return clone;
}

double ImageClassifier::Accuracy(const std::vector<Tensor>& frames,
                                 const std::vector<int>& labels) {
  // vdrift-lint: allow(no-data-dependent-check): caller-size contract
  VDRIFT_CHECK(frames.size() == labels.size());
  if (frames.empty()) return 0.0;
  int correct = 0;
  for (size_t i = 0; i < frames.size(); ++i) {
    if (Predict(frames[i]) == labels[i]) ++correct;
  }
  return static_cast<double>(correct) / static_cast<double>(frames.size());
}

}  // namespace vdrift::detect
