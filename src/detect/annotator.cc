#include "detect/annotator.h"

#include <algorithm>

#include "tensor/ops.h"

namespace vdrift::detect {

int CountLabel(const video::FrameTruth& truth, int num_classes) {
  return std::clamp(truth.CarCount() / kCountBinWidth, 0, num_classes - 1);
}

int PredicateLabel(const video::FrameTruth& truth) {
  return truth.BusLeftOfCar() ? 1 : 0;
}

OracleAnnotator::OracleAnnotator(int work_dim) : work_dim_(work_dim) {
  if (work_dim_ > 0) {
    work_a_ = tensor::Tensor(tensor::Shape{work_dim_, work_dim_}, 0.5f);
    work_b_ = tensor::Tensor(tensor::Shape{work_dim_, work_dim_}, 0.25f);
  }
}

video::FrameTruth OracleAnnotator::Annotate(const video::Frame& frame) const {
  if (work_dim_ > 0) {
    // Simulated segmentation workload: one dense GEMM per frame.
    tensor::Tensor result = tensor::Matmul(work_a_, work_b_);
    // Fold a value back into the work buffer so the compiler cannot elide
    // the computation.
    work_a_[0] = result[0] * 1e-6f + 0.5f;
  }
  return frame.truth;
}

}  // namespace vdrift::detect
