#ifndef VDRIFT_DETECT_ANNOTATOR_H_
#define VDRIFT_DETECT_ANNOTATOR_H_

#include <cstdint>

#include "tensor/tensor.h"
#include "video/frame.h"

namespace vdrift::detect {

/// Width of a count bin: the count query is answered over car-count
/// *buckets* ([0,2], [3,5], ...) rather than raw counts, so the class
/// distribution stays informative for the dense traffic scenes of Table 5
/// (mean counts of 9-19 would otherwise all clamp into the top class).
inline constexpr int kCountBinWidth = 3;

/// Maps ground truth to a count-query class label: the car count bucketed
/// by kCountBinWidth and clamped into [0, num_classes).
int CountLabel(const video::FrameTruth& truth, int num_classes);

/// Maps ground truth to the spatial-query label: 1 iff "bus left of car".
int PredicateLabel(const video::FrameTruth& truth);

/// \brief The annotation oracle — the Mask R-CNN substitute.
///
/// In the paper Mask R-CNN plays two roles: (a) the label oracle used to
/// annotate training windows and score query accuracy (by construction its
/// accuracy is 1.0 in Fig. 7), and (b) the slow high-quality detector of
/// the end-to-end comparison (Table 9, one order of magnitude slower than
/// the proposed pipelines). The oracle reads exact truth straight from the
/// synthetic scene, and its compute cost is modelled by a real dense
/// workload (`work_dim`^3 multiply-adds per frame) so that end-to-end
/// timings have the paper's relative shape rather than being stubbed.
class OracleAnnotator {
 public:
  /// `work_dim` = 0 disables the simulated compute (free oracle labels,
  /// used when annotating training sets where the paper amortizes the
  /// cost offline).
  explicit OracleAnnotator(int work_dim = 0);

  /// Returns the frame's ground truth, burning the configured compute.
  video::FrameTruth Annotate(const video::Frame& frame) const;

  /// The per-frame simulated workload dimension.
  int work_dim() const { return work_dim_; }

 private:
  int work_dim_;
  mutable tensor::Tensor work_a_;
  mutable tensor::Tensor work_b_;
};

}  // namespace vdrift::detect

#endif  // VDRIFT_DETECT_ANNOTATOR_H_
