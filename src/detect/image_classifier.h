#ifndef VDRIFT_DETECT_IMAGE_CLASSIFIER_H_
#define VDRIFT_DETECT_IMAGE_CLASSIFIER_H_

#include <memory>
#include <vector>

#include "common/result.h"
#include "nn/classifier.h"
#include "nn/dropout.h"
#include "nn/sequential.h"
#include "stats/rng.h"
#include "tensor/tensor.h"

namespace vdrift::detect {

/// \brief Architecture knobs of the per-distribution classifiers.
///
/// These CNNs stand in for the paper's VGG-19 count classifiers and OD-CLF
/// spatial filters (§6.3) at laptop scale. `base_filters` controls compute
/// cost: the drift-oblivious YOLOv7 stand-in uses a wider trunk so its
/// per-frame cost realistically dominates the light per-sequence models.
struct ClassifierConfig {
  int image_size = 32;
  int channels = 1;
  int num_classes = 10;
  int base_filters = 8;
  /// When > 0 a Dropout layer is inserted before the classifier head,
  /// enabling Monte-Carlo-dropout uncertainty (the Bayesian-approximation
  /// alternative of [18] that the paper contrasts with deep ensembles).
  double dropout_rate = 0.0;
};

/// \brief Training hyperparameters for a classifier.
struct ClassifierTrainConfig {
  int epochs = 6;
  int batch_size = 16;
  float learning_rate = 2e-3f;
};

/// \brief A small CNN classifier over frames.
class ImageClassifier : public nn::ProbabilisticClassifier {
 public:
  ImageClassifier(const ClassifierConfig& config, stats::Rng* rng);

  ImageClassifier(const ImageClassifier&) = delete;
  ImageClassifier& operator=(const ImageClassifier&) = delete;
  ImageClassifier(ImageClassifier&&) = default;
  ImageClassifier& operator=(ImageClassifier&&) = default;

  /// Trains on ([C,H,W] frame, integer label) pairs with softmax
  /// cross-entropy + Adam; returns the per-epoch average loss.
  Result<std::vector<double>> Train(const std::vector<tensor::Tensor>& frames,
                                    const std::vector<int>& labels,
                                    const ClassifierTrainConfig& train_config,
                                    stats::Rng* rng);

  std::vector<float> PredictProba(const tensor::Tensor& frame) override;
  int Predict(const tensor::Tensor& frame) override;
  int num_classes() const override { return config_.num_classes; }

  /// Deep copy: same architecture and parameters, fresh forward-pass
  /// caches and dropout RNG — safe to run on another thread.
  std::shared_ptr<nn::ProbabilisticClassifier> Clone() const override;

  /// Monte-Carlo-dropout predictive distribution: averages `passes`
  /// stochastic forward passes with dropout active. Requires
  /// config.dropout_rate > 0; with rate 0 it equals PredictProba.
  std::vector<float> PredictProbaMcDropout(const tensor::Tensor& frame,
                                           int passes);

  /// Batched logits for evaluation ([N, K]).
  tensor::Tensor ForwardBatch(const tensor::Tensor& batch);

  /// Fraction of frames whose argmax prediction matches the label.
  double Accuracy(const std::vector<tensor::Tensor>& frames,
                  const std::vector<int>& labels);

  const ClassifierConfig& config() const { return config_; }
  /// The underlying network (for parameter copying in tests).
  nn::Sequential* net() { return &net_; }

 private:
  // Toggles train/eval mode on any dropout layers.
  void SetDropoutTraining(bool training);

  ClassifierConfig config_;
  nn::Sequential net_;
  nn::Dropout* dropout_ = nullptr;  // owned by net_
  // Heap-held so the Dropout layer's pointer to it survives moves.
  std::unique_ptr<stats::Rng> dropout_rng_;
};

}  // namespace vdrift::detect

#endif  // VDRIFT_DETECT_IMAGE_CLASSIFIER_H_
