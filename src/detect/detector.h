#ifndef VDRIFT_DETECT_DETECTOR_H_
#define VDRIFT_DETECT_DETECTOR_H_

#include <memory>
#include <vector>

#include "common/result.h"
#include "detect/image_classifier.h"
#include "stats/rng.h"
#include "video/frame.h"

namespace vdrift::detect {

/// \brief The drift-oblivious detector — the YOLOv7 substitute.
///
/// In the end-to-end comparison (Table 9 / Fig. 7-8) YOLOv7 processes
/// every frame with one fixed model: no drift detection, no model
/// switching. We reproduce that role with a *wider* CNN (so its real
/// per-frame compute sits well above the light per-sequence classifiers,
/// as YOLOv7's does above the VGG-based filters) trained once on the
/// stream's initial distribution; its accuracy collapses after drift for
/// the genuine reason — covariate shift — rather than by fiat.
class SimulatedDetector {
 public:
  struct Config {
    int image_size = 32;
    int channels = 1;
    int count_classes = 10;
    int base_filters = 16;  ///< Wider than the per-sequence classifiers.
  };

  SimulatedDetector(const Config& config, stats::Rng* rng);

  /// Trains both heads on the given frames (labels derived from truth).
  Status Train(const std::vector<video::Frame>& frames,
               const ClassifierTrainConfig& train_config, stats::Rng* rng);

  /// Predicted car-count class for a frame.
  int PredictCount(const tensor::Tensor& pixels);

  /// Predicted truth value of the "bus left of car" predicate.
  bool PredictPredicate(const tensor::Tensor& pixels);

  int count_classes() const { return config_.count_classes; }

 private:
  Config config_;
  ImageClassifier count_head_;
  ImageClassifier predicate_head_;
};

}  // namespace vdrift::detect

#endif  // VDRIFT_DETECT_DETECTOR_H_
