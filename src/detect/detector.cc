#include "detect/detector.h"

#include "detect/annotator.h"
#include "obs/metrics.h"
#include "video/stream.h"

namespace vdrift::detect {

namespace {

ClassifierConfig HeadConfig(const SimulatedDetector::Config& config,
                            int num_classes) {
  ClassifierConfig head;
  head.image_size = config.image_size;
  head.channels = config.channels;
  head.num_classes = num_classes;
  head.base_filters = config.base_filters;
  return head;
}

}  // namespace

SimulatedDetector::SimulatedDetector(const Config& config, stats::Rng* rng)
    : config_(config),
      count_head_(HeadConfig(config, config.count_classes), rng),
      predicate_head_(HeadConfig(config, 2), rng) {}

Status SimulatedDetector::Train(const std::vector<video::Frame>& frames,
                                const ClassifierTrainConfig& train_config,
                                stats::Rng* rng) {
  if (frames.empty()) {
    return Status::InvalidArgument("detector training needs frames");
  }
  std::vector<tensor::Tensor> pixels = video::PixelsOf(frames);
  std::vector<int> count_labels;
  std::vector<int> predicate_labels;
  count_labels.reserve(frames.size());
  predicate_labels.reserve(frames.size());
  for (const video::Frame& f : frames) {
    count_labels.push_back(CountLabel(f.truth, config_.count_classes));
    predicate_labels.push_back(PredicateLabel(f.truth));
  }
  VDRIFT_RETURN_NOT_OK(
      count_head_.Train(pixels, count_labels, train_config, rng).status());
  VDRIFT_RETURN_NOT_OK(
      predicate_head_.Train(pixels, predicate_labels, train_config, rng)
          .status());
  return Status::OK();
}

int SimulatedDetector::PredictCount(const tensor::Tensor& pixels) {
  obs::Global().GetCounter("vdrift.detect.invocations").Increment();
  return count_head_.Predict(pixels);
}

bool SimulatedDetector::PredictPredicate(const tensor::Tensor& pixels) {
  obs::Global().GetCounter("vdrift.detect.invocations").Increment();
  return predicate_head_.Predict(pixels) == 1;
}

}  // namespace vdrift::detect
