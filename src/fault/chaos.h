#ifndef VDRIFT_FAULT_CHAOS_H_
#define VDRIFT_FAULT_CHAOS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/result.h"

namespace vdrift::fault {

/// \brief What a chaos campaign knows how to break at fleet granularity.
///
/// These are *between-round* events — the fleet's BSP barrier is the only
/// place a coordinator can observe a crash deterministically, so the plan
/// speaks in rounds, not wall time.
enum class ChaosKind : int {
  kKillShard = 0,       ///< Tear a shard down (restore from checkpoint).
  kCorruptCheckpoint,   ///< Flip one bit of a shard's on-disk checkpoint.
  kCorruptManifest,     ///< Flip one bit of the fleet manifest on disk.
  kKillCoordinator,     ///< Halt the whole fleet mid-run (manifest resume).
  kNumChaosKinds,       ///< Sentinel; not an event.
};

/// Spec-string name of a kind (e.g. "kill_shard").
const char* ChaosKindName(ChaosKind kind);

/// \brief One scheduled chaos event.
struct ChaosEvent {
  ChaosKind kind = ChaosKind::kKillShard;
  int64_t round = 0;    ///< Fires at the start of this round.
  std::string stream;   ///< Target shard label (empty for fleet-level kinds).
};

/// \brief A deterministic, seed-driven chaos schedule for a fleet run.
///
/// The same (seed, stream set, horizon) triple always yields the same
/// event list, so any failure a chaos campaign finds is replayable
/// bit-for-bit — the same property the per-frame FaultInjector has, lifted
/// to fleet granularity.
struct ChaosPlan {
  struct Options {
    double kill_shard_p = 0.05;         ///< Per (stream, round).
    double corrupt_checkpoint_p = 0.02; ///< Per (stream, round).
    double corrupt_manifest_p = 0.0;    ///< Per round.
    /// Schedule exactly one coordinator kill at a random round in
    /// [1, horizon). false = the fleet runs uninterrupted.
    bool kill_coordinator = false;
  };

  std::vector<ChaosEvent> events;  ///< Sorted by round, then draw order.

  /// Generates the schedule. Draw order is fixed (round-major, then the
  /// stream order given, then event kind), so adding a stream never
  /// perturbs the schedule of the rounds before it.
  static ChaosPlan FromSeed(uint64_t seed,
                            const std::vector<std::string>& streams,
                            int64_t horizon_rounds,
                            const Options& options);
  static ChaosPlan FromSeed(uint64_t seed,
                            const std::vector<std::string>& streams,
                            int64_t horizon_rounds) {
    return FromSeed(seed, streams, horizon_rounds, Options{});
  }

  /// Events scheduled at `round`, in draw order.
  std::vector<ChaosEvent> EventsAt(int64_t round) const;

  /// Round of the (single) coordinator kill; -1 when none is scheduled.
  int64_t coordinator_kill_round() const;

  /// Copy of this plan with every coordinator-kill event removed — the
  /// schedule a resumed fleet runs (the crash already happened; replaying
  /// it would livelock the campaign).
  ChaosPlan WithoutCoordinatorKill() const;

  bool empty() const { return events.empty(); }

  /// Human-readable schedule, one "round:kind[:stream]" clause per event.
  std::string ToString() const;
};

/// Flips one seed-deterministic bit of the file at `path` in place —
/// the on-disk damage kCorruptCheckpoint / kCorruptManifest inject.
/// kIoError when the file cannot be read or written; OK (no-op) on an
/// empty file.
[[nodiscard]] Status CorruptFileForChaos(const std::string& path,
                                         uint64_t seed);

}  // namespace vdrift::fault

#endif  // VDRIFT_FAULT_CHAOS_H_
