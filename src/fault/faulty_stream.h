#ifndef VDRIFT_FAULT_FAULTY_STREAM_H_
#define VDRIFT_FAULT_FAULTY_STREAM_H_

#include <cstdint>

#include "fault/fault.h"
#include "video/frame.h"
#include "video/stream.h"

namespace vdrift::fault {

/// \brief FrameSource decorator that injects stream-level faults.
///
/// Wraps any video::FrameSource and, per frame, may drop it, deliver it
/// twice, stall delivery, garbage a pixel band, or poison pixels with NaN —
/// according to the injector's plan. The pipeline underneath sees an
/// ordinary FrameSource; nothing downstream knows the harness exists.
///
/// Replays are deterministic: Reset() rewinds the inner source AND the
/// injector, so the n-th delivered frame carries the same damage every run.
/// Neither the inner source nor the injector is owned; both must outlive
/// the stream. The injector may be shared with the pipeline's other
/// injection points (selector, checkpoint) — sharing interleaves their
/// draws, which is still deterministic for a fixed (plan, seed, workload).
class FaultyStream : public video::FrameSource {
 public:
  FaultyStream(video::FrameSource* inner, FaultInjector* injector);

  bool Next(video::Frame* frame) override;

  /// Frames *delivered* downstream (drops excluded, duplicates included) —
  /// the cursor a checkpoint must record for the consumer's replay to line
  /// up with what the consumer actually saw.
  int64_t position() const override { return delivered_; }

  int64_t total_frames() const override { return inner_->total_frames(); }

  /// Rewinds the inner source and the injector for a bit-identical replay.
  void Reset() override;

  /// Frames silently dropped so far.
  int64_t dropped() const { return dropped_; }
  /// Extra deliveries due to duplication so far.
  int64_t duplicated() const { return duplicated_; }
  /// Delivery stalls so far.
  int64_t stalls() const { return stalls_; }

 private:
  video::FrameSource* inner_;
  FaultInjector* injector_;
  video::Frame pending_dup_;
  bool has_pending_dup_ = false;
  int64_t delivered_ = 0;
  int64_t dropped_ = 0;
  int64_t duplicated_ = 0;
  int64_t stalls_ = 0;
};

}  // namespace vdrift::fault

#endif  // VDRIFT_FAULT_FAULTY_STREAM_H_
