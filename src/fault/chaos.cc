#include "fault/chaos.h"

#include <algorithm>
#include <sstream>

#include "common/binio.h"
#include "common/logging.h"
#include "stats/rng.h"

namespace vdrift::fault {

namespace {

constexpr const char* kChaosKindNames[] = {
    "kill_shard",
    "corrupt_checkpoint",
    "corrupt_manifest",
    "kill_coordinator",
};

}  // namespace

const char* ChaosKindName(ChaosKind kind) {
  int k = static_cast<int>(kind);
  VDRIFT_CHECK(k >= 0 && k < static_cast<int>(ChaosKind::kNumChaosKinds));
  return kChaosKindNames[k];
}

ChaosPlan ChaosPlan::FromSeed(uint64_t seed,
                              const std::vector<std::string>& streams,
                              int64_t horizon_rounds,
                              const Options& options) {
  ChaosPlan plan;
  stats::Rng rng(seed);
  // The coordinator kill is drawn first so the per-round schedule is
  // independent of whether it is armed.
  int64_t kill_round = -1;
  if (options.kill_coordinator && horizon_rounds > 1) {
    kill_round = rng.NextInt(1, static_cast<int>(horizon_rounds - 1));
  }
  for (int64_t round = 0; round < horizon_rounds; ++round) {
    if (round == kill_round) {
      plan.events.push_back(
          ChaosEvent{ChaosKind::kKillCoordinator, round, ""});
    }
    for (const std::string& stream : streams) {
      if (options.kill_shard_p > 0.0 &&
          rng.NextBernoulli(options.kill_shard_p)) {
        plan.events.push_back(
            ChaosEvent{ChaosKind::kKillShard, round, stream});
      }
      if (options.corrupt_checkpoint_p > 0.0 &&
          rng.NextBernoulli(options.corrupt_checkpoint_p)) {
        plan.events.push_back(
            ChaosEvent{ChaosKind::kCorruptCheckpoint, round, stream});
      }
    }
    if (options.corrupt_manifest_p > 0.0 &&
        rng.NextBernoulli(options.corrupt_manifest_p)) {
      plan.events.push_back(
          ChaosEvent{ChaosKind::kCorruptManifest, round, ""});
    }
  }
  return plan;
}

std::vector<ChaosEvent> ChaosPlan::EventsAt(int64_t round) const {
  std::vector<ChaosEvent> at;
  for (const ChaosEvent& event : events) {
    if (event.round == round) at.push_back(event);
  }
  return at;
}

int64_t ChaosPlan::coordinator_kill_round() const {
  for (const ChaosEvent& event : events) {
    if (event.kind == ChaosKind::kKillCoordinator) return event.round;
  }
  return -1;
}

ChaosPlan ChaosPlan::WithoutCoordinatorKill() const {
  ChaosPlan stripped;
  for (const ChaosEvent& event : events) {
    if (event.kind == ChaosKind::kKillCoordinator) continue;
    stripped.events.push_back(event);
  }
  return stripped;
}

std::string ChaosPlan::ToString() const {
  std::ostringstream out;
  bool first = true;
  for (const ChaosEvent& event : events) {
    if (!first) out << ";";
    first = false;
    out << event.round << ":" << ChaosKindName(event.kind);
    if (!event.stream.empty()) out << ":" << event.stream;
  }
  return out.str();
}

Status CorruptFileForChaos(const std::string& path, uint64_t seed) {
  VDRIFT_ASSIGN_OR_RETURN(std::string bytes, ReadFileToString(path));
  if (bytes.empty()) return Status::OK();
  stats::Rng rng(seed);
  const size_t byte = static_cast<size_t>(rng.NextInt(
      0, static_cast<int>(std::min<size_t>(bytes.size() - 1, 1u << 30))));
  const int bit = rng.NextInt(0, 7);
  bytes[byte] ^= static_cast<char>(1u << static_cast<unsigned>(bit));
  return AtomicWriteFile(path, bytes);
}

}  // namespace vdrift::fault
