#include "fault/fault.h"

#include <cmath>
#include <cstdlib>
#include <limits>
#include <sstream>
#include <utility>

#include "common/logging.h"
#include "obs/metrics.h"

namespace vdrift::fault {

namespace {

constexpr const char* kKindNames[kNumFaultKinds] = {
    "corrupt_frame",      "nan_frame",       "drop_frame",
    "dup_frame",          "stall",           "annotator_deadline",
    "annotator_error",    "selector_fail",   "io_fail",
    "checkpoint_corrupt",
};

/// Resolves a spec-string name to a kind; -1 when unknown.
int KindFromName(const std::string& name) {
  for (int k = 0; k < kNumFaultKinds; ++k) {
    if (name == kKindNames[k]) return k;
  }
  return -1;
}

}  // namespace

const char* FaultKindName(FaultKind kind) {
  int k = static_cast<int>(kind);
  VDRIFT_CHECK(k >= 0 && k < kNumFaultKinds);
  return kKindNames[k];
}

bool FaultPlan::empty() const {
  for (const FaultRate& rate : rates) {
    if (rate.p > 0.0) return false;
  }
  return true;
}

std::string FaultPlan::ToString() const {
  std::ostringstream out;
  bool first = true;
  for (int k = 0; k < kNumFaultKinds; ++k) {
    const FaultRate& rate = rates[static_cast<size_t>(k)];
    if (rate.p <= 0.0) continue;
    if (!first) out << ";";
    first = false;
    out << kKindNames[k] << ":p=" << rate.p;
    if (rate.ms > 0) out << ",ms=" << rate.ms;
  }
  return out.str();
}

Result<FaultPlan> FaultPlan::Parse(const std::string& spec) {
  FaultPlan plan;
  std::istringstream clauses(spec);
  std::string clause;
  while (std::getline(clauses, clause, ';')) {
    if (clause.empty()) continue;
    size_t colon = clause.find(':');
    if (colon == std::string::npos) {
      return Status::InvalidArgument("fault clause missing ':': " + clause);
    }
    std::string name = clause.substr(0, colon);
    int kind = KindFromName(name);
    if (kind < 0) {
      return Status::InvalidArgument("unknown fault kind: " + name);
    }
    FaultRate& rate = plan.rates[static_cast<size_t>(kind)];
    std::istringstream params(clause.substr(colon + 1));
    std::string param;
    bool saw_p = false;
    while (std::getline(params, param, ',')) {
      size_t eq = param.find('=');
      if (eq == std::string::npos) {
        return Status::InvalidArgument("fault param missing '=': " + param);
      }
      std::string key = param.substr(0, eq);
      std::string value = param.substr(eq + 1);
      char* end = nullptr;
      double parsed = std::strtod(value.c_str(), &end);
      if (end == value.c_str() || *end != '\0' || !std::isfinite(parsed)) {
        return Status::InvalidArgument("bad fault param value: " + param);
      }
      if (key == "p") {
        if (parsed < 0.0 || parsed > 1.0) {
          return Status::InvalidArgument("fault probability out of [0,1]: " +
                                         value);
        }
        rate.p = parsed;
        saw_p = true;
      } else if (key == "ms") {
        if (parsed < 0.0 || parsed > 60 * 1000.0) {
          return Status::InvalidArgument("fault ms out of [0, 60000]: " +
                                         value);
        }
        rate.ms = static_cast<int>(parsed);
      } else {
        return Status::InvalidArgument("unknown fault param: " + key);
      }
    }
    if (!saw_p) {
      return Status::InvalidArgument("fault clause missing p=: " + clause);
    }
  }
  return plan;
}

Result<std::vector<StreamFaultPlan>> ParsePerStreamFaultSpec(
    const std::string& spec) {
  std::vector<StreamFaultPlan> plans;
  std::istringstream entries(spec);
  std::string entry;
  while (std::getline(entries, entry, '|')) {
    if (entry.empty()) continue;
    size_t at = entry.find('@');
    if (at == std::string::npos) {
      return Status::InvalidArgument("per-stream fault entry missing '@': " +
                                     entry);
    }
    std::string label = entry.substr(0, at);
    if (label.empty()) {
      return Status::InvalidArgument("per-stream fault entry has empty "
                                     "stream label: " +
                                     entry);
    }
    // Labels become metric label values and checkpoint file names;
    // whitespace there is always a quoting accident in the spec.
    for (char c : label) {
      if (c == ' ' || c == '\t' || c == '\n' || c == '\r') {
        return Status::InvalidArgument(
            "per-stream fault label contains whitespace: '" + label + "'");
      }
    }
    for (const StreamFaultPlan& existing : plans) {
      if (existing.stream == label) {
        return Status::InvalidArgument("duplicate stream label in fault "
                                       "spec: " +
                                       label);
      }
    }
    const std::string plan_spec = entry.substr(at + 1);
    if (plan_spec.empty()) {
      // "s1@" would silently arm zero faults — a campaign typo that must
      // fail loudly, not test nothing.
      return Status::InvalidArgument(
          "per-stream fault entry has empty plan for stream '" + label +
          "'");
    }
    VDRIFT_ASSIGN_OR_RETURN(FaultPlan plan, FaultPlan::Parse(plan_spec));
    plans.push_back(StreamFaultPlan{std::move(label), plan});
  }
  return plans;
}

FaultPlan FaultPlan::FromEnv() {
  // vdrift-lint: allow(no-ambient-nondeterminism): documented fault knob
  const char* spec = std::getenv("VDRIFT_FAULT_SPEC");
  if (spec == nullptr || spec[0] == '\0') return FaultPlan{};
  Result<FaultPlan> plan = Parse(spec);
  VDRIFT_CHECK(plan.ok()) << "VDRIFT_FAULT_SPEC invalid: "
                          << plan.status().ToString();
  return std::move(plan).value();
}

FaultInjector::FaultInjector(FaultPlan plan, uint64_t seed)
    : plan_(plan), seed_(seed), rng_(seed) {}

bool FaultInjector::ShouldInject(FaultKind kind) {
  const FaultRate& rate = plan_.rate(kind);
  // p == 0 consumes no randomness: kinds that are off never perturb the
  // draw sequence of kinds that are on.
  if (rate.p <= 0.0) return false;
  if (rng_.NextDouble() >= rate.p) return false;
  ++counts_[static_cast<size_t>(kind)];
  obs::Global()
      .GetCounter(std::string("vdrift.fault.injected.") + FaultKindName(kind))
      .Increment();
  return true;
}

void FaultInjector::CorruptTensor(tensor::Tensor* tensor) {
  VDRIFT_CHECK(tensor != nullptr);
  if (tensor->empty()) return;
  int64_t n = tensor->size();
  // Garbage a contiguous band covering ~1/4 of the tensor: localized
  // damage, like a slice of a frame arriving from a different world.
  int64_t band = std::max<int64_t>(1, n / 4);
  int64_t start = static_cast<int64_t>(rng_.NextDouble() *
                                       static_cast<double>(n - band));
  for (int64_t i = start; i < start + band; ++i) {
    (*tensor)[i] = static_cast<float>(rng_.NextDouble() * 8.0 - 4.0);
  }
}

void FaultInjector::PoisonTensor(tensor::Tensor* tensor) {
  VDRIFT_CHECK(tensor != nullptr);
  if (tensor->empty()) return;
  int64_t n = tensor->size();
  // Poison ~1% of elements, at least one — a single NaN is enough to sink
  // any mean/distance computation downstream.
  int64_t hits = std::max<int64_t>(1, n / 100);
  for (int64_t h = 0; h < hits; ++h) {
    int64_t i = static_cast<int64_t>(rng_.NextDouble() *
                                     static_cast<double>(n));
    if (i >= n) i = n - 1;
    (*tensor)[i] = std::numeric_limits<float>::quiet_NaN();
  }
}

void FaultInjector::CorruptBytes(std::string* bytes) {
  VDRIFT_CHECK(bytes != nullptr);
  if (bytes->empty()) return;
  size_t index = static_cast<size_t>(
      rng_.NextDouble() * static_cast<double>(bytes->size()));
  if (index >= bytes->size()) index = bytes->size() - 1;
  int bit = rng_.NextInt(0, 7);
  (*bytes)[index] = static_cast<char>(
      static_cast<unsigned char>((*bytes)[index]) ^ (1u << bit));
}

void FaultInjector::TearBytes(std::string* bytes) {
  VDRIFT_CHECK(bytes != nullptr);
  if (bytes->size() < 2) return;
  // Cut somewhere strictly inside, so a header-only stub and a
  // nearly-complete file are both reachable outcomes.
  size_t cut = 1 + static_cast<size_t>(
                       rng_.NextDouble() *
                       static_cast<double>(bytes->size() - 1));
  if (cut >= bytes->size()) cut = bytes->size() - 1;
  bytes->resize(cut);
}

int64_t FaultInjector::total_injected() const {
  int64_t total = 0;
  for (int64_t count : counts_) total += count;
  return total;
}

void FaultInjector::Reset() {
  rng_ = stats::Rng(seed_);
  counts_.fill(0);
}

}  // namespace vdrift::fault
