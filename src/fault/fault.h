#ifndef VDRIFT_FAULT_FAULT_H_
#define VDRIFT_FAULT_FAULT_H_

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "common/result.h"
#include "stats/rng.h"
#include "tensor/tensor.h"

namespace vdrift::fault {

/// \brief Everything the harness knows how to break.
///
/// Each kind corresponds to one injection point in the stream, the
/// annotator/detector, the model selectors, or the checkpoint I/O path —
/// the failure surfaces a deployed video-analytics pipeline actually has.
enum class FaultKind : int {
  kCorruptFrame = 0,    ///< Finite garbage pixels (sensor noise, codec damage).
  kNanFrame,            ///< NaN-poisoned pixels (DMA/FP corruption).
  kDropFrame,           ///< Frame silently lost upstream.
  kDupFrame,            ///< Frame delivered twice (retrying transport).
  kStall,               ///< Delivery stalls for `ms` milliseconds.
  kAnnotatorDeadline,   ///< Annotator misses its re-annotation deadline.
  kAnnotatorError,      ///< Annotator returns a spurious error Status.
  kSelectorFail,        ///< MSBI/MSBO selection fails transiently.
  kIoFail,              ///< Registry/model I/O returns kIoError.
  kCheckpointCorrupt,   ///< Checkpoint bytes flipped / torn on write.
  kNumKinds,            ///< Sentinel; not a fault.
};

inline constexpr int kNumFaultKinds = static_cast<int>(FaultKind::kNumKinds);

/// Spec-string name of a kind (e.g. "corrupt_frame").
const char* FaultKindName(FaultKind kind);

/// \brief Injection rate of one fault kind.
struct FaultRate {
  double p = 0.0;  ///< Per-opportunity probability in [0, 1].
  int ms = 0;      ///< Duration parameter (only kStall uses it).
};

/// \brief A complete, deterministic description of what to inject.
///
/// Parsed from a spec string of the form
///   "corrupt_frame:p=0.01;stall:p=0.005,ms=50;selector_fail:p=0.02"
/// (semicolon-separated clauses, each `kind:key=value[,key=value]`).
/// The same plan + the same injector seed reproduces the same fault
/// sequence bit-for-bit, so any crash found by the sweep is replayable.
struct FaultPlan {
  std::array<FaultRate, kNumFaultKinds> rates{};

  /// Rate of one kind.
  const FaultRate& rate(FaultKind kind) const {
    return rates[static_cast<size_t>(kind)];
  }
  FaultRate& rate(FaultKind kind) {
    return rates[static_cast<size_t>(kind)];
  }

  /// True iff every rate is zero (nothing will ever fire).
  bool empty() const;

  /// Canonical spec string (only non-zero clauses, enum order).
  std::string ToString() const;

  /// Parses a spec string. Unknown kinds, malformed clauses, or
  /// probabilities outside [0, 1] are kInvalidArgument.
  static Result<FaultPlan> Parse(const std::string& spec);

  /// Plan from the VDRIFT_FAULT_SPEC environment variable; the empty plan
  /// when unset or empty. A malformed spec aborts (a fault campaign with a
  /// typo'd spec silently testing nothing is worse than a crash).
  static FaultPlan FromEnv();
};

/// \brief One stream's fault plan in a multi-stream campaign.
struct StreamFaultPlan {
  std::string stream;  ///< The stream label the plan applies to.
  FaultPlan plan;
};

/// Parses a per-stream fault spec for fleet runs:
///
///   "<label>@<plan-spec>|<label>@<plan-spec>|..."
///
/// e.g. "s3@nan_frame:p=0.02;selector_fail:p=1|s5@stall:p=0.1,ms=2" —
/// '|' separates streams, '@' separates a stream label from its
/// FaultPlan::Parse clause list. Each stream gets its own FaultInjector
/// (the injector is not thread-safe and fleet shards run concurrently),
/// so faults on one stream never perturb another stream's draw sequence.
/// Duplicate labels, empty labels, labels containing whitespace, empty
/// plan clauses ("s1@"), or malformed plans are kInvalidArgument. The
/// empty spec parses to an empty list.
Result<std::vector<StreamFaultPlan>> ParsePerStreamFaultSpec(
    const std::string& spec);

/// \brief Seed-driven fault source shared by every injection point.
///
/// All randomness comes from one PCG32 stream, so a (plan, seed) pair
/// fully determines which opportunities fire and what the corruptions
/// look like. Kinds with p == 0 never consume randomness — enabling one
/// fault kind does not perturb the draw sequence of another that is off.
/// Every injected fault bumps `vdrift.fault.injected.<kind>` in the
/// global metrics registry and a per-kind local count, so a sweep can
/// assert that nothing was lost silently.
///
/// Not thread-safe: injection points all sit on the serial control path
/// of the pipeline (frame admission, drift handling, checkpoint I/O).
class FaultInjector {
 public:
  FaultInjector(FaultPlan plan, uint64_t seed);

  /// Rolls the dice for one opportunity of `kind`. Returns true — and
  /// records the injection — with probability plan.rate(kind).p.
  bool ShouldInject(FaultKind kind);

  /// Duration parameter for `kind` (kStall's sleep).
  int duration_ms(FaultKind kind) const {
    return plan_.rate(kind).ms;
  }

  /// Overwrites a deterministic band of pixels with finite garbage
  /// (values in [-4, 4] — wild but representable, the kind of damage the
  /// DI should absorb as "a very strange frame", not crash on).
  void CorruptTensor(tensor::Tensor* tensor);

  /// Poisons a deterministic subset of elements with quiet NaN.
  void PoisonTensor(tensor::Tensor* tensor);

  /// Flips one random bit of `bytes` (checkpoint-corruption fault);
  /// no-op on an empty string.
  void CorruptBytes(std::string* bytes);

  /// Truncates `bytes` at a random interior point (torn write);
  /// no-op when the string has fewer than 2 bytes.
  void TearBytes(std::string* bytes);

  /// Times `kind` fired so far.
  int64_t count(FaultKind kind) const {
    return counts_[static_cast<size_t>(kind)];
  }

  /// Total injections across all kinds.
  int64_t total_injected() const;

  /// The plan in force.
  const FaultPlan& plan() const { return plan_; }

  /// Rewinds the RNG to the construction seed and zeroes the per-kind
  /// counts (global metrics counters are monotonic and are not touched).
  /// Lets a replay reproduce the exact fault sequence.
  void Reset();

 private:
  FaultPlan plan_;
  uint64_t seed_;
  stats::Rng rng_;
  std::array<int64_t, kNumFaultKinds> counts_{};
};

}  // namespace vdrift::fault

#endif  // VDRIFT_FAULT_FAULT_H_
