#include "fault/faulty_stream.h"

// vdrift-lint: allow(no-raw-chrono): duration literal for an injected
// wall-clock stall, not a measurement — obs timers measure, they can't sleep.
#include <chrono>
#include <thread>

#include "common/logging.h"

namespace vdrift::fault {

FaultyStream::FaultyStream(video::FrameSource* inner, FaultInjector* injector)
    : inner_(inner), injector_(injector) {
  VDRIFT_CHECK(inner_ != nullptr);
  VDRIFT_CHECK(injector_ != nullptr);
}

bool FaultyStream::Next(video::Frame* frame) {
  if (has_pending_dup_) {
    *frame = pending_dup_;
    has_pending_dup_ = false;
    ++delivered_;
    return true;
  }
  while (inner_->Next(frame)) {
    if (injector_->ShouldInject(FaultKind::kDropFrame)) {
      ++dropped_;
      continue;  // swallowed upstream; consumer never sees it
    }
    if (injector_->ShouldInject(FaultKind::kDupFrame)) {
      pending_dup_ = *frame;
      has_pending_dup_ = true;
      ++duplicated_;
    }
    if (injector_->ShouldInject(FaultKind::kStall)) {
      ++stalls_;
      int ms = injector_->duration_ms(FaultKind::kStall);
      if (ms > 0) {
        // vdrift-lint: allow(no-raw-chrono): the stall fault IS a real
        // wall-clock sleep by design.
        std::this_thread::sleep_for(std::chrono::milliseconds(ms));
      }
    }
    if (injector_->ShouldInject(FaultKind::kCorruptFrame)) {
      injector_->CorruptTensor(&frame->pixels);
    }
    if (injector_->ShouldInject(FaultKind::kNanFrame)) {
      injector_->PoisonTensor(&frame->pixels);
    }
    ++delivered_;
    return true;
  }
  return false;
}

void FaultyStream::Reset() {
  inner_->Reset();
  injector_->Reset();
  has_pending_dup_ = false;
  delivered_ = 0;
  dropped_ = 0;
  duplicated_ = 0;
  stalls_ = 0;
}

}  // namespace vdrift::fault
