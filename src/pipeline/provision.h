#ifndef VDRIFT_PIPELINE_PROVISION_H_
#define VDRIFT_PIPELINE_PROVISION_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "core/profile.h"
#include "core/registry.h"
#include "detect/image_classifier.h"
#include "stats/rng.h"
#include "video/frame.h"

namespace vdrift::pipeline {

/// \brief Everything needed to provision a model M_i for one distribution.
///
/// Mirrors the paper's trainNewModel() path (§5.4): from a window of
/// annotated frames, train (a) the VAE for DI/MSBI, (b) an ensemble of L
/// classifiers for MSBO, and (c) the query models (count classifier and
/// spatial-predicate classifier).
struct ProvisionOptions {
  conformal::DistributionProfile::Options profile;
  int count_classes = 8;
  int ensemble_size = 3;  ///< L; paper: typical values 3..10.
  int classifier_filters = 8;
  detect::ClassifierTrainConfig classifier_train;
  bool train_predicate_model = true;
};

/// Sensible laptop-scale defaults shared by tests, examples, and benches.
ProvisionOptions DefaultProvisionOptions();

/// Trains a full ModelEntry from annotated frames of one distribution.
/// Labels are read from the frames' ground truth — i.e. from the
/// annotation oracle (Mask R-CNN's role in the paper).
Result<select::ModelEntry> ProvisionModel(
    const std::string& name, const std::vector<video::Frame>& frames,
    const ProvisionOptions& options, stats::Rng* rng);

/// Builds the labeled calibration sample S_Ti for MSBO from frames of
/// distribution i (§5.2.2).
std::vector<select::LabeledFrame> MakeLabeledSample(
    const std::vector<video::Frame>& frames, int count_classes,
    int sample_size, stats::Rng* rng);

}  // namespace vdrift::pipeline

#endif  // VDRIFT_PIPELINE_PROVISION_H_
