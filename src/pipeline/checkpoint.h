#ifndef VDRIFT_PIPELINE_CHECKPOINT_H_
#define VDRIFT_PIPELINE_CHECKPOINT_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/result.h"
#include "core/drift_inspector.h"
#include "core/msbo.h"
#include "fault/fault.h"
#include "pipeline/pipeline.h"
#include "stats/rng.h"
#include "video/frame.h"

namespace vdrift::pipeline {

/// \brief Everything DriftAwarePipeline needs to continue after a crash.
///
/// Model weights are deliberately NOT here: the registry is re-provisioned
/// deterministically from config on cold start, and the checkpoint records
/// only a fingerprint (the ordered model names) to detect when the live
/// registry no longer matches the snapshot. The known limitation is
/// models learned mid-run (trainNewModel): a fresh process does not have
/// them, its fingerprint differs, and Resume reports kDataLoss — the
/// correct answer, since serving against a missing model would be wrong.
struct PipelineCheckpoint {
  std::vector<std::string> registry_fingerprint;  ///< Ordered model names.
  int32_t deployed = 0;
  bool drift_oblivious = false;
  int32_t consecutive_selection_failures = 0;
  stats::Rng::State pipeline_rng;
  conformal::DriftInspector::State inspector;
  select::MsboCalibration calibration;
  bool calibrated = false;
  int64_t stream_cursor = 0;  ///< Frames the consumer had seen.

  // Cumulative PipelineMetrics counters (timing/obs instruments are not
  // state — they restart from zero after a resume).
  int64_t frames = 0;
  int32_t drifts_detected = 0;
  int32_t new_models_trained = 0;
  std::vector<int64_t> drift_frames;
  std::vector<std::string> selections;
  int64_t selection_invocations = 0;
  std::map<int, SequenceAccuracy> per_sequence;
  DegradationStats degradation;

  // --- v2 fields ---
  // Detection-lag clock, so a resumed run's detect_lag_frames histogram is
  // bit-identical to an uninterrupted one (the clock must keep counting
  // across the resume, not restart at -1/0).
  int32_t last_sequence_id = -1;
  int64_t frames_since_sequence_change = 0;
  double last_p_value = 1.0;
  // Per-detection lags, replayed into the fresh per-run histogram.
  std::vector<int64_t> detect_lags;
  // Drift handling parked at a slice boundary: phase (0=idle, 1=recovery
  // window, 2=training window), the retry state, and the buffered frames
  // themselves — a resume continues collecting exactly where the
  // interrupted run stopped.
  uint8_t recovery_phase = 0;
  int32_t recovery_target = 0;
  int32_t recovery_backoff = 0;
  int32_t recovery_attempt = 0;
  bool recovery_initial_collect = true;
  std::vector<video::Frame> recovery_window;
  std::vector<video::Frame> recovery_training;
};

/// Serializes a checkpoint: 8-byte magic "VDCKPT01", u32 version, u64
/// payload length, payload, u32 CRC-32 of the payload.
std::string EncodeCheckpoint(const PipelineCheckpoint& checkpoint);

/// Parses bytes produced by EncodeCheckpoint. Bad magic, unknown version,
/// length mismatch, CRC failure, or truncation anywhere inside the payload
/// all return kDataLoss — corruption is diagnosed, never executed.
[[nodiscard]] Result<PipelineCheckpoint> DecodeCheckpoint(const std::string& bytes);

/// Encodes + writes atomically (tmp + rename). `injector` (nullable) is
/// rolled at the I/O boundary: kIoFail aborts the write with kIoError,
/// kCheckpointCorrupt flips a bit or tears the buffer before it lands —
/// producing exactly the on-disk damage Resume must survive.
[[nodiscard]] Status WriteCheckpointFile(const PipelineCheckpoint& checkpoint,
                           const std::string& path,
                           fault::FaultInjector* injector);

/// Reads + decodes. `injector` (nullable): kIoFail fails the read.
[[nodiscard]] Result<PipelineCheckpoint> ReadCheckpointFile(const std::string& path,
                                              fault::FaultInjector* injector);

}  // namespace vdrift::pipeline

#endif  // VDRIFT_PIPELINE_CHECKPOINT_H_
