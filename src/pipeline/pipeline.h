#ifndef VDRIFT_PIPELINE_PIPELINE_H_
#define VDRIFT_PIPELINE_PIPELINE_H_

#include <algorithm>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "baseline/odin.h"
#include "common/result.h"
#include "core/drift_inspector.h"
#include "core/msbi.h"
#include "core/msbo.h"
#include "core/registry.h"
#include "detect/annotator.h"
#include "detect/detector.h"
#include "fault/fault.h"
#include "obs/episode_trace.h"
#include "obs/metrics.h"
#include "obs/sampler.h"
#include "obs/watchdog.h"
#include "pipeline/provision.h"
#include "stats/rng.h"
#include "video/stream.h"

namespace vdrift::pipeline {

/// \brief Query-accuracy counters for one stream sequence.
struct SequenceAccuracy {
  int64_t count_correct = 0;
  int64_t count_total = 0;
  int64_t predicate_correct = 0;
  int64_t predicate_total = 0;
  int64_t invocations = 0;  ///< Count-model invocations on this sequence.

  /// A_q of the count query (§6.3.1).
  double CountAq() const {
    return count_total == 0
               ? 0.0
               : static_cast<double>(count_correct) /
                     static_cast<double>(count_total);
  }
  /// A_q of the spatial-constrained query (§6.3.2).
  double PredicateAq() const {
    return predicate_total == 0
               ? 0.0
               : static_cast<double>(predicate_correct) /
                     static_cast<double>(predicate_total);
  }
  /// Mean model invocations per frame (§6.2's cost metric). Denominated
  /// over all frames that ran *any* query: count-only and predicate-only
  /// runs both count, so the ratio stays consistent with `invocations`
  /// no matter which query mix produced it.
  double InvocationsPerFrame() const {
    int64_t queried_frames = std::max(count_total, predicate_total);
    return queried_frames == 0
               ? 0.0
               : static_cast<double>(invocations) /
                     static_cast<double>(queried_frames);
  }
};

/// \brief What the pipeline absorbed instead of crashing.
///
/// Every graceful-degradation path increments exactly one field here, so
/// a fault sweep can reconcile the books: frames delivered == frames
/// queried + frames dropped, drifts detected == selections + incumbent
/// fallbacks, and so on. Silent loss is the one outcome these counters
/// make impossible.
struct DegradationStats {
  int64_t frames_dropped = 0;        ///< Non-finite frames skipped (DI + window).
  int64_t selector_failures = 0;     ///< Failed Select attempts (incl. retries).
  int64_t selector_retries = 0;      ///< Retries after a failed attempt.
  int64_t incumbent_fallbacks = 0;   ///< Drifts resolved by keeping the incumbent.
  int64_t annotator_deferrals = 0;   ///< Deadline overruns: label deferred.
  int64_t annotator_errors = 0;      ///< Spurious annotator errors tolerated.
  int64_t recalibrate_failures = 0;  ///< Recalibrations that kept old calibration.
  int64_t checkpoint_failures = 0;   ///< Checkpoint writes that failed.
  bool drift_oblivious = false;      ///< True once drift handling gave up.

  int64_t total_events() const {
    return frames_dropped + selector_failures + selector_retries +
           incumbent_fallbacks + annotator_deferrals + annotator_errors +
           recalibrate_failures + checkpoint_failures;
  }
};

/// \brief Observability wiring of one pipeline run: the windowed metrics
/// sampler and the SLO health watchdog.
///
/// Sampling is driven by the pipeline's admitted-frame count, not wall
/// time, so the window series (and every watchdog verdict) is
/// deterministic across machines and reruns of the same stream.
struct PipelineObsOptions {
  /// Admitted frames per sampling window; 0 disables the sampler (and
  /// with it the watchdog and the JSONL sink).
  int sample_interval_frames = 0;
  /// Sampler ring capacity (the JSONL sink keeps the full series).
  int max_windows = 1024;
  /// SLO rule spec (obs::ParseSloSpec grammar). "" runs without a
  /// watchdog; the literal "default" arms obs::DefaultSloSpec(). A spec
  /// that fails to parse logs a warning and disarms the watchdog rather
  /// than failing the run.
  std::string slo_spec;
  /// Per-window JSONL time-series sink ("" disables).
  std::string jsonl_path;
  /// When non-empty, every pipeline instrument carries {stream="<label>"}
  /// so several pipelines can share one registry without colliding
  /// (multi-stream serving).
  std::string stream_label;
  /// When set, the pipeline records into this registry instead of creating
  /// a private one — the fleet hands every stream the same registry so
  /// labeled per-stream series and unlabeled aggregates coexist. Pair with
  /// a unique stream_label per pipeline.
  std::shared_ptr<obs::MetricsRegistry> shared_registry;

  /// Reads VDRIFT_SAMPLE_INTERVAL, VDRIFT_SLO_SPEC, VDRIFT_METRICS_JSONL,
  /// and VDRIFT_STREAM_LABEL. Unset variables keep the defaults above, so
  /// an unconfigured environment costs nothing.
  static PipelineObsOptions FromEnv();
};

/// \brief Everything a pipeline run reports.
struct PipelineMetrics {
  int64_t frames = 0;
  int drifts_detected = 0;
  int new_models_trained = 0;
  std::vector<int64_t> drift_frames;      ///< Stream indices of detections.
  std::vector<int64_t> detect_lags;       ///< Frames from truth change to
                                          ///< detection, one per detection
                                          ///< (mirrors the detect_lag_frames
                                          ///< histogram so resumes can
                                          ///< rebuild it bit-identically).
  std::vector<std::string> selections;    ///< Model picked per drift.
  int64_t selection_invocations = 0;      ///< Selector-internal invocations.
  std::map<int, SequenceAccuracy> per_sequence;  ///< Keyed by sequence id.
  DegradationStats degradation;           ///< Faults absorbed, not crashed on.

  /// Derived views over the obs spans recorded in `registry` (sums of the
  /// `vdrift.pipeline.*_seconds` histograms) — kept as plain fields so
  /// existing callers read them exactly as before.
  double total_seconds = 0.0;
  double detect_seconds = 0.0;   ///< Time in DI / ODIN-Detect.
  double select_seconds = 0.0;   ///< Time in MS / ODIN-Select.
  double query_seconds = 0.0;    ///< Time in the deployed query models.

  /// Per-run instruments (`vdrift.pipeline.*`): per-frame latency
  /// histograms behind the *_seconds sums, plus frame/drift counters.
  std::shared_ptr<obs::MetricsRegistry> registry;
  /// Drift-episode telemetry: martingale/p-value/bet traces around each
  /// detection with the selector's decision attached.
  std::shared_ptr<obs::EpisodeRecorder> episodes;
  /// Windowed time-series over `registry` (null unless
  /// PipelineObsOptions::sample_interval_frames > 0).
  std::shared_ptr<obs::MetricsSampler> sampler;
  /// SLO watchdog evaluated on every sampled window (null unless a
  /// slo_spec is armed).
  std::shared_ptr<obs::HealthWatchdog> watchdog;

  /// Aggregates the per-sequence counters.
  SequenceAccuracy Totals() const;
};

/// \brief How hard the pipeline fights before giving up on drift handling.
struct DegradationPolicy {
  /// Failed selections are retried this many times before the drift is
  /// resolved by keeping the incumbent model.
  int max_selection_retries = 2;
  /// Frames of extra recovery window collected before the first retry;
  /// doubles on each subsequent retry (exponential backoff expressed in
  /// stream time — the pipeline keeps serving frames while it waits).
  int backoff_initial_frames = 4;
  /// After this many *consecutive* drifts end in incumbent fallback, the
  /// pipeline stops trying: it drops to drift-oblivious operation (queries
  /// keep running on the incumbent; DI is disarmed) rather than burning
  /// the selector on every window. 0 disables the tripwire.
  int max_consecutive_failures = 3;
};

/// \brief Configuration of the drift-aware pipeline (Fig. 1 architecture).
struct PipelineConfig {
  enum class Selector { kMsbo, kMsbi };
  Selector selector = Selector::kMsbo;
  int initial_model = 0;
  conformal::DriftInspectorConfig di;
  select::MsbiConfig msbi;
  select::MsboConfig msbo;
  /// Frames collected after a detection before the selector runs (W_T /
  /// W_N in the paper; both default to 10 in §6.2).
  int recovery_window = 10;
  /// Frames collected to train a new model when no provisioned one fits
  /// (the paper collects ~5k frames; scaled down here).
  int new_model_window = 96;
  bool allow_training_new = true;
  /// Names of models learned mid-run: `<prefix><n>` for the n-th trained
  /// model. Fleet shards override this with a per-stream prefix so models
  /// published into the shared registry never collide by name.
  std::string trained_model_prefix = "learned-";
  ProvisionOptions provision;   ///< Used by the trainNewModel path.
  bool run_queries = true;      ///< Execute count/predicate queries.
  bool run_predicate = false;   ///< Also score the spatial query.
  uint64_t seed = 4242;
  DegradationPolicy degrade;    ///< Graceful-degradation knobs.
  /// Optional fault source (not owned; must outlive the pipeline). When
  /// set, the selector, annotator, and checkpoint paths roll its dice at
  /// their injection points. Null (the default) costs nothing: every
  /// injection check is a single pointer test on the drift-handling path,
  /// never per frame.
  fault::FaultInjector* injector = nullptr;
  /// Sampler / SLO watchdog / JSONL exporter wiring (disabled by default;
  /// PipelineObsOptions::FromEnv() arms it from the environment).
  PipelineObsOptions obs;
};

/// \brief The paper's end-to-end system: DI + (MSBO or MSBI) + deployment.
///
/// Frames are routed to the Drift Inspector monitoring the currently
/// deployed model's distribution; while no drift is detected the deployed
/// query models process the stream. On a detection, a recovery window of
/// frames is collected (labeled by the annotation oracle when MSBO is
/// selected), the Model Selector picks the best provisioned model — or
/// signals that a new one must be trained (§5.4) — and the pipeline
/// redeploys and re-arms DI against the new distribution.
/// \brief Limits on one DriftAwarePipeline::Run call (checkpoint drills
/// pause a run mid-stream).
struct RunOptions {
  /// Frames to admit from the stream in this call; -1 = until the
  /// stream is exhausted. EVERY frame pulled from the stream counts:
  /// frames consumed inside drift handling (recovery window, training
  /// window) draw from the same budget, so a slice never overshoots —
  /// `stream->position()` advances by exactly min(max_frames, remaining)
  /// per call. A slice boundary can therefore land mid-recovery; the
  /// pipeline parks the partially collected window and the next Run call
  /// (or a checkpoint/resume cycle — the parked state is serialized)
  /// continues collecting where it stopped.
  int64_t max_frames = -1;
};

class DriftAwarePipeline {
 public:
  /// `registry` must outlive the pipeline. `calibration_samples` holds the
  /// labeled S_Ti sample per registry entry (MSBO calibration, §5.2.2).
  DriftAwarePipeline(
      select::ModelRegistry* registry,
      std::vector<std::vector<select::LabeledFrame>> calibration_samples,
      const PipelineConfig& config);

  /// Processes the stream (or `options.max_frames` of it); returns the
  /// cumulative metrics. Metrics accumulate across Run calls on the same
  /// pipeline, so pause/checkpoint/continue reports the same totals as an
  /// uninterrupted run.
  Result<PipelineMetrics> Run(video::FrameSource* stream,
                              const RunOptions& options = {});

  /// The currently deployed model index.
  int deployed_model() const { return deployed_; }

  /// True once repeated selection failures tripped the pipeline into
  /// drift-oblivious operation.
  bool drift_oblivious() const { return drift_oblivious_; }

  /// Cumulative metrics so far (valid between Run calls).
  const PipelineMetrics& metrics() const { return metrics_; }

  /// True while a drift is being handled across a slice boundary: the
  /// last Run call exhausted its frame budget mid-recovery (window or
  /// training collection) and the next call will continue it.
  bool recovery_pending() const {
    return recovery_.phase != DriftRecovery::Phase::kIdle;
  }

  /// The labeled calibration sample per registry entry, in registry
  /// order. Entries appended by trainNewModel carry the sample drawn from
  /// their training window — the fleet publishes it alongside the model
  /// so adopting streams can recalibrate.
  const std::vector<std::vector<select::LabeledFrame>>& calibration_samples()
      const {
    return calibration_samples_;
  }

  /// \brief Adds a model published by another stream to this pipeline's
  /// registry and recalibrates so the selector can pick it.
  ///
  /// No-op (returns OK) when an entry with the same name already exists.
  /// A failed recalibration degrades exactly like the trainNewModel path:
  /// the new entry gets a permissive calibration extension and the
  /// failure is counted, never fatal.
  Status AdoptModel(const select::ModelEntry& entry,
                    const std::vector<select::LabeledFrame>& sample);

  /// The active drift inspector (tests probe its martingale trajectory).
  const conformal::DriftInspector& inspector() const { return *inspector_; }

  /// \brief Writes a versioned, CRC-guarded snapshot of the pipeline's
  /// recoverable state to `path` (atomic tmp+rename): inspector state
  /// (martingale trajectory, RNG), deployed model, MSBO calibration,
  /// degradation state, cumulative metrics counters, and the stream
  /// cursor `stream->position()`. Model weights are NOT serialized; the
  /// snapshot records a registry fingerprint instead, so resuming
  /// requires re-provisioning the same registry (see Resume). Non-const
  /// because a failed or fault-injected write is itself recorded in the
  /// degradation stats.
  Status Checkpoint(const std::string& path, const video::FrameSource& stream);

  /// \brief Restores a snapshot written by Checkpoint and fast-forwards
  /// `stream` (Reset + replay) to the saved cursor.
  ///
  /// Any integrity failure — bad magic, unknown version, CRC mismatch,
  /// truncation, registry fingerprint mismatch, or a stream shorter than
  /// the cursor — returns kDataLoss and leaves the pipeline in its
  /// cold-start state, so the caller's fallback is simply to Run from the
  /// beginning; nothing crashes on a torn or corrupted file.
  Status Resume(const std::string& path, video::FrameSource* stream);

 private:
  /// Per-run instrument names; when PipelineObsOptions::stream_label is
  /// set every name carries a {stream="..."} label so several pipelines
  /// can share one registry.
  struct ObsNames {
    std::string run_span, detect_span, select_span, query_span;
    std::string frames, drifts, frames_dropped, selection_failures,
        redeployments, checkpoint_failures;
    std::string detect_lag, drift_oblivious, incumbent_fallbacks,
        annotator_deferrals, annotator_errors, selector_retries,
        recalibrate_failures, martingale, p_value;
  };

  /// \brief Drift handling parked across Run-call boundaries.
  ///
  /// Recovery/training frames draw from the same admitted-frame budget as
  /// the main loop, so a slice boundary can interrupt drift handling at
  /// any point; this struct is the continuation. It is serialized into
  /// checkpoints (including the buffered frames) so a resumed run
  /// continues collecting exactly where the interrupted one stopped.
  struct DriftRecovery {
    enum class Phase : uint8_t {
      kIdle = 0,      ///< No drift being handled.
      kWindow = 1,    ///< Collecting the recovery window / retry backoff.
      kTraining = 2,  ///< Collecting the trainNewModel window.
    };
    Phase phase = Phase::kIdle;
    std::vector<video::Frame> window;    ///< Recovery-window frames.
    std::vector<video::Frame> training;  ///< Training-window frames.
    int target = 0;   ///< Frames `window` must reach before selecting.
    int backoff = 0;  ///< Next retry's extra window frames.
    int attempt = 0;  ///< Selection attempts so far for this drift.
    bool initial_collect = true;  ///< First fill of the recovery window.
  };

  Status EnsureCalibrated();
  /// Arms recovery for a drift detected on the current frame.
  void BeginDriftHandling();
  /// Advances drift handling until it completes or the frame budget is
  /// exhausted (`*admitted` reaching `max_frames`); resumable.
  Status ContinueDriftHandling(video::FrameSource* stream,
                               PipelineMetrics* metrics, int64_t* admitted,
                               int64_t max_frames);
  /// Records the decision, re-arms DI on the newly deployed model, and
  /// clears the parked recovery state.
  void FinishRedeployment(PipelineMetrics* metrics);
  Result<select::Selection> AttemptSelection(
      const std::vector<video::Frame>& window, PipelineMetrics* metrics);
  void RecordQueries(const video::Frame& frame, PipelineMetrics* metrics);
  /// Advances the detection-lag clock for one admitted frame — called for
  /// every frame pulled from the stream, inside and outside recovery, so
  /// `detect_lag_frames` measures true stream time.
  void AdvanceLagClock(const video::Frame& frame);
  Status Recalibrate();
  /// (Re)creates the per-run registry/episodes plus, when armed, the
  /// sampler and watchdog (constructor and Resume).
  void AttachRunObservability();
  /// Mirrors pipeline state into gauges and closes a sampling window when
  /// the admitted-frame clock crossed the interval (`force` closes the
  /// final partial window at the end of a Run).
  void TickObs(bool force);

  select::ModelRegistry* registry_;
  std::vector<std::vector<select::LabeledFrame>> calibration_samples_;
  PipelineConfig config_;
  select::MsboCalibration calibration_;
  bool calibrated_ = false;
  detect::OracleAnnotator oracle_;
  stats::Rng rng_;
  int deployed_ = 0;
  bool drift_oblivious_ = false;
  int consecutive_selection_failures_ = 0;
  std::unique_ptr<conformal::DriftInspector> inspector_;
  PipelineMetrics metrics_;
  DriftRecovery recovery_;
  ObsNames names_;
  int64_t last_sample_frame_ = 0;   ///< Admitted-frame clock at last window.
  double last_p_value_ = 1.0;       ///< Most recent DI observation's p.
  int last_sequence_id_ = -1;       ///< Ground-truth sequence under way.
  int64_t frames_since_sequence_change_ = 0;  ///< Detection-lag clock.
};

/// \brief The ODIN baseline pipeline: ODIN-Detect + ODIN-Select per frame.
///
/// All latents come from one shared encoder (ODIN maintains a single VAE).
/// Each registry model seeds a permanent cluster from its training frames'
/// latents; every incoming frame is assigned to zero or more clusters and
/// processed by the corresponding model (or equal-weight ensemble — the
/// source of the >1 invocations-per-frame and the accuracy loss in
/// §6.2/§6.3). Frames no cluster accepts go to the temporary cluster whose
/// stabilization is ODIN's drift declaration.
class OdinPipeline {
 public:
  struct Config {
    baseline::OdinConfig odin;
    int encoder_model = 0;  ///< Registry entry whose VAE encodes frames.
    bool run_queries = true;
    bool run_predicate = false;
  };

  /// `training_frames[i]` are frames of distribution i used to seed
  /// cluster i (encoded with the shared encoder).
  OdinPipeline(select::ModelRegistry* registry,
               const std::vector<std::vector<video::Frame>>& training_frames,
               const Config& config);

  Result<PipelineMetrics> Run(video::FrameSource* stream);

  /// Number of permanent clusters after the run.
  int num_clusters() const { return odin_.num_clusters(); }

 private:
  select::ModelRegistry* registry_;
  Config config_;
  baseline::OdinDetect odin_;
};

/// \brief Drift-oblivious single-detector pipelines (YOLOv7 / Mask R-CNN
/// rows of Table 9 and Figs. 7-8).
class StaticDetectorPipeline {
 public:
  /// YOLOv7 substitute: runs the given detector on every frame.
  static Result<PipelineMetrics> RunDetector(
      detect::SimulatedDetector* detector, video::FrameSource* stream,
      bool run_predicate);

  /// Mask R-CNN substitute: the oracle annotator labels every frame (its
  /// accuracy is 1.0 by construction); `work_dim` sets the simulated
  /// per-frame segmentation cost.
  static Result<PipelineMetrics> RunOracle(int work_dim,
                                           video::FrameSource* stream);
};

}  // namespace vdrift::pipeline

#endif  // VDRIFT_PIPELINE_PIPELINE_H_
