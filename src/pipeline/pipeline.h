#ifndef VDRIFT_PIPELINE_PIPELINE_H_
#define VDRIFT_PIPELINE_PIPELINE_H_

#include <algorithm>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "baseline/odin.h"
#include "common/result.h"
#include "core/drift_inspector.h"
#include "core/msbi.h"
#include "core/msbo.h"
#include "core/registry.h"
#include "detect/annotator.h"
#include "detect/detector.h"
#include "obs/episode_trace.h"
#include "obs/metrics.h"
#include "pipeline/provision.h"
#include "stats/rng.h"
#include "video/stream.h"

namespace vdrift::pipeline {

/// \brief Query-accuracy counters for one stream sequence.
struct SequenceAccuracy {
  int64_t count_correct = 0;
  int64_t count_total = 0;
  int64_t predicate_correct = 0;
  int64_t predicate_total = 0;
  int64_t invocations = 0;  ///< Count-model invocations on this sequence.

  /// A_q of the count query (§6.3.1).
  double CountAq() const {
    return count_total == 0
               ? 0.0
               : static_cast<double>(count_correct) /
                     static_cast<double>(count_total);
  }
  /// A_q of the spatial-constrained query (§6.3.2).
  double PredicateAq() const {
    return predicate_total == 0
               ? 0.0
               : static_cast<double>(predicate_correct) /
                     static_cast<double>(predicate_total);
  }
  /// Mean model invocations per frame (§6.2's cost metric). Denominated
  /// over all frames that ran *any* query: count-only and predicate-only
  /// runs both count, so the ratio stays consistent with `invocations`
  /// no matter which query mix produced it.
  double InvocationsPerFrame() const {
    int64_t queried_frames = std::max(count_total, predicate_total);
    return queried_frames == 0
               ? 0.0
               : static_cast<double>(invocations) /
                     static_cast<double>(queried_frames);
  }
};

/// \brief Everything a pipeline run reports.
struct PipelineMetrics {
  int64_t frames = 0;
  int drifts_detected = 0;
  int new_models_trained = 0;
  std::vector<int64_t> drift_frames;      ///< Stream indices of detections.
  std::vector<std::string> selections;    ///< Model picked per drift.
  int64_t selection_invocations = 0;      ///< Selector-internal invocations.
  std::map<int, SequenceAccuracy> per_sequence;  ///< Keyed by sequence id.

  /// Derived views over the obs spans recorded in `registry` (sums of the
  /// `vdrift.pipeline.*_seconds` histograms) — kept as plain fields so
  /// existing callers read them exactly as before.
  double total_seconds = 0.0;
  double detect_seconds = 0.0;   ///< Time in DI / ODIN-Detect.
  double select_seconds = 0.0;   ///< Time in MS / ODIN-Select.
  double query_seconds = 0.0;    ///< Time in the deployed query models.

  /// Per-run instruments (`vdrift.pipeline.*`): per-frame latency
  /// histograms behind the *_seconds sums, plus frame/drift counters.
  std::shared_ptr<obs::MetricsRegistry> registry;
  /// Drift-episode telemetry: martingale/p-value/bet traces around each
  /// detection with the selector's decision attached.
  std::shared_ptr<obs::EpisodeRecorder> episodes;

  /// Aggregates the per-sequence counters.
  SequenceAccuracy Totals() const;
};

/// \brief Configuration of the drift-aware pipeline (Fig. 1 architecture).
struct PipelineConfig {
  enum class Selector { kMsbo, kMsbi };
  Selector selector = Selector::kMsbo;
  int initial_model = 0;
  conformal::DriftInspectorConfig di;
  select::MsbiConfig msbi;
  select::MsboConfig msbo;
  /// Frames collected after a detection before the selector runs (W_T /
  /// W_N in the paper; both default to 10 in §6.2).
  int recovery_window = 10;
  /// Frames collected to train a new model when no provisioned one fits
  /// (the paper collects ~5k frames; scaled down here).
  int new_model_window = 96;
  bool allow_training_new = true;
  ProvisionOptions provision;   ///< Used by the trainNewModel path.
  bool run_queries = true;      ///< Execute count/predicate queries.
  bool run_predicate = false;   ///< Also score the spatial query.
  uint64_t seed = 4242;
};

/// \brief The paper's end-to-end system: DI + (MSBO or MSBI) + deployment.
///
/// Frames are routed to the Drift Inspector monitoring the currently
/// deployed model's distribution; while no drift is detected the deployed
/// query models process the stream. On a detection, a recovery window of
/// frames is collected (labeled by the annotation oracle when MSBO is
/// selected), the Model Selector picks the best provisioned model — or
/// signals that a new one must be trained (§5.4) — and the pipeline
/// redeploys and re-arms DI against the new distribution.
class DriftAwarePipeline {
 public:
  /// `registry` must outlive the pipeline. `calibration_samples` holds the
  /// labeled S_Ti sample per registry entry (MSBO calibration, §5.2.2).
  DriftAwarePipeline(
      select::ModelRegistry* registry,
      std::vector<std::vector<select::LabeledFrame>> calibration_samples,
      const PipelineConfig& config);

  /// Processes the whole stream; returns metrics.
  Result<PipelineMetrics> Run(video::StreamGenerator* stream);

  /// The currently deployed model index.
  int deployed_model() const { return deployed_; }

 private:
  Status HandleDrift(video::StreamGenerator* stream, PipelineMetrics* metrics);
  void RecordQueries(const video::Frame& frame, PipelineMetrics* metrics);
  Status Recalibrate();

  select::ModelRegistry* registry_;
  std::vector<std::vector<select::LabeledFrame>> calibration_samples_;
  PipelineConfig config_;
  select::MsboCalibration calibration_;
  detect::OracleAnnotator oracle_;
  stats::Rng rng_;
  int deployed_ = 0;
  std::unique_ptr<conformal::DriftInspector> inspector_;
};

/// \brief The ODIN baseline pipeline: ODIN-Detect + ODIN-Select per frame.
///
/// All latents come from one shared encoder (ODIN maintains a single VAE).
/// Each registry model seeds a permanent cluster from its training frames'
/// latents; every incoming frame is assigned to zero or more clusters and
/// processed by the corresponding model (or equal-weight ensemble — the
/// source of the >1 invocations-per-frame and the accuracy loss in
/// §6.2/§6.3). Frames no cluster accepts go to the temporary cluster whose
/// stabilization is ODIN's drift declaration.
class OdinPipeline {
 public:
  struct Config {
    baseline::OdinConfig odin;
    int encoder_model = 0;  ///< Registry entry whose VAE encodes frames.
    bool run_queries = true;
    bool run_predicate = false;
  };

  /// `training_frames[i]` are frames of distribution i used to seed
  /// cluster i (encoded with the shared encoder).
  OdinPipeline(select::ModelRegistry* registry,
               const std::vector<std::vector<video::Frame>>& training_frames,
               const Config& config);

  Result<PipelineMetrics> Run(video::StreamGenerator* stream);

  /// Number of permanent clusters after the run.
  int num_clusters() const { return odin_.num_clusters(); }

 private:
  select::ModelRegistry* registry_;
  Config config_;
  baseline::OdinDetect odin_;
};

/// \brief Drift-oblivious single-detector pipelines (YOLOv7 / Mask R-CNN
/// rows of Table 9 and Figs. 7-8).
class StaticDetectorPipeline {
 public:
  /// YOLOv7 substitute: runs the given detector on every frame.
  static Result<PipelineMetrics> RunDetector(
      detect::SimulatedDetector* detector, video::StreamGenerator* stream,
      bool run_predicate);

  /// Mask R-CNN substitute: the oracle annotator labels every frame (its
  /// accuracy is 1.0 by construction); `work_dim` sets the simulated
  /// per-frame segmentation cost.
  static Result<PipelineMetrics> RunOracle(int work_dim,
                                           video::StreamGenerator* stream);
};

}  // namespace vdrift::pipeline

#endif  // VDRIFT_PIPELINE_PIPELINE_H_
