#include "pipeline/pipeline.h"

#include <algorithm>

#include "common/logging.h"
#include "obs/timer.h"
#include "stats/distance.h"

namespace vdrift::pipeline {

namespace {

// Span/metric names of the per-run registry. The *_seconds histograms are
// per-section latency distributions; PipelineMetrics' timing fields are
// their sums.
constexpr char kRunSpan[] = "vdrift.pipeline.run_seconds";
constexpr char kDetectSpan[] = "vdrift.pipeline.detect_seconds";
constexpr char kSelectSpan[] = "vdrift.pipeline.select_seconds";
constexpr char kQuerySpan[] = "vdrift.pipeline.query_seconds";

// Creates the per-run registry + episode recorder on `metrics`.
void AttachObservability(PipelineMetrics* metrics) {
  metrics->registry = std::make_shared<obs::MetricsRegistry>();
  metrics->episodes = std::make_shared<obs::EpisodeRecorder>();
}

// Copies the span sums into the legacy timing fields.
void DeriveTimingFields(PipelineMetrics* metrics) {
  obs::MetricsRegistry& reg = *metrics->registry;
  metrics->total_seconds = reg.GetHistogram(kRunSpan).sum();
  metrics->detect_seconds = reg.GetHistogram(kDetectSpan).sum();
  metrics->select_seconds = reg.GetHistogram(kSelectSpan).sum();
  metrics->query_seconds = reg.GetHistogram(kQuerySpan).sum();
}

}  // namespace

SequenceAccuracy PipelineMetrics::Totals() const {
  SequenceAccuracy total;
  for (const auto& [id, acc] : per_sequence) {
    total.count_correct += acc.count_correct;
    total.count_total += acc.count_total;
    total.predicate_correct += acc.predicate_correct;
    total.predicate_total += acc.predicate_total;
    total.invocations += acc.invocations;
  }
  return total;
}

DriftAwarePipeline::DriftAwarePipeline(
    select::ModelRegistry* registry,
    std::vector<std::vector<select::LabeledFrame>> calibration_samples,
    const PipelineConfig& config)
    : registry_(registry),
      calibration_samples_(std::move(calibration_samples)),
      config_(config),
      oracle_(0),
      rng_(config.seed),
      deployed_(config.initial_model) {
  VDRIFT_CHECK(registry_ != nullptr && !registry_->empty());
  VDRIFT_CHECK(deployed_ >= 0 && deployed_ < registry_->size());
  if (config_.selector == PipelineConfig::Selector::kMsbo) {
    VDRIFT_CHECK(static_cast<int>(calibration_samples_.size()) ==
                 registry_->size())
        << "MSBO needs one calibration sample per model";
    VDRIFT_CHECK_OK(Recalibrate());
  }
  inspector_ = std::make_unique<conformal::DriftInspector>(
      registry_->at(deployed_).profile.get(), config_.di, config_.seed);
}

Status DriftAwarePipeline::Recalibrate() {
  VDRIFT_ASSIGN_OR_RETURN(
      calibration_, select::CalibrateMsbo(*registry_, calibration_samples_));
  return Status::OK();
}

void DriftAwarePipeline::RecordQueries(const video::Frame& frame,
                                       PipelineMetrics* metrics) {
  obs::TraceSpan query_span(metrics->registry.get(), kQuerySpan);
  SequenceAccuracy& acc = metrics->per_sequence[frame.truth.sequence_id];
  const select::ModelEntry& entry = registry_->at(deployed_);
  int count_classes = entry.count_model->num_classes();
  int predicted = entry.count_model->Predict(frame.pixels);
  int truth = detect::CountLabel(frame.truth, count_classes);
  acc.count_total += 1;
  acc.invocations += 1;
  if (predicted == truth) acc.count_correct += 1;
  if (config_.run_predicate && entry.predicate_model != nullptr) {
    int p = entry.predicate_model->Predict(frame.pixels);
    acc.predicate_total += 1;
    if (p == detect::PredicateLabel(frame.truth)) acc.predicate_correct += 1;
  }
}

Status DriftAwarePipeline::HandleDrift(video::StreamGenerator* stream,
                                       PipelineMetrics* metrics) {
  // Collect the recovery window (frames keep being processed by the
  // still-deployed model while the selector decides).
  std::vector<video::Frame> window;
  video::Frame frame;
  while (static_cast<int>(window.size()) < config_.recovery_window &&
         stream->Next(&frame)) {
    metrics->frames += 1;
    if (config_.run_queries) RecordQueries(frame, metrics);
    window.push_back(frame);
  }
  if (window.empty()) return Status::OK();  // stream ended at the drift

  select::Selection selection;
  {
    obs::TraceSpan select_span(metrics->registry.get(), kSelectSpan);
    if (config_.selector == PipelineConfig::Selector::kMsbo) {
      std::vector<select::LabeledFrame> labeled;
      labeled.reserve(window.size());
      int count_classes = config_.provision.count_classes;
      for (const video::Frame& f : window) {
        video::FrameTruth truth = oracle_.Annotate(f);
        labeled.push_back(
            {f.pixels, detect::CountLabel(truth, count_classes)});
      }
      select::Msbo msbo(registry_, calibration_, config_.msbo);
      VDRIFT_ASSIGN_OR_RETURN(selection, msbo.Select(labeled));
    } else {
      select::Msbi msbi(registry_, config_.msbi);
      VDRIFT_ASSIGN_OR_RETURN(selection,
                              msbi.Select(video::PixelsOf(window)));
    }
  }
  metrics->selection_invocations += selection.invocations;

  if (selection.train_new_model) {
    if (!config_.allow_training_new) {
      // Keep the best-effort current deployment.
      metrics->selections.push_back("<none>");
      metrics->episodes->AnnotateDecision("<none>");
      inspector_->Reset();
      return Status::OK();
    }
    // trainNewModel() (§5.4): accumulate more frames, annotate with the
    // oracle, and provision a full model entry.
    std::vector<video::Frame> training = window;
    while (static_cast<int>(training.size()) < config_.new_model_window &&
           stream->Next(&frame)) {
      metrics->frames += 1;
      if (config_.run_queries) RecordQueries(frame, metrics);
      training.push_back(frame);
    }
    std::string name =
        "learned-" + std::to_string(metrics->new_models_trained);
    VDRIFT_ASSIGN_OR_RETURN(
        select::ModelEntry entry,
        ProvisionModel(name, training, config_.provision, &rng_));
    int index = registry_->Add(std::move(entry));
    calibration_samples_.push_back(MakeLabeledSample(
        training, config_.provision.count_classes, 32, &rng_));
    if (config_.selector == PipelineConfig::Selector::kMsbo) {
      VDRIFT_RETURN_NOT_OK(Recalibrate());
    }
    deployed_ = index;
    metrics->new_models_trained += 1;
    metrics->selections.push_back(name);
  } else {
    deployed_ = selection.model_index;
    metrics->selections.push_back(registry_->at(deployed_).name);
  }
  metrics->episodes->AnnotateDecision(metrics->selections.back());
  metrics->registry->GetCounter("vdrift.pipeline.redeployments").Increment();
  // Re-arm DI against the newly deployed distribution.
  inspector_ = std::make_unique<conformal::DriftInspector>(
      registry_->at(deployed_).profile.get(), config_.di,
      config_.seed + static_cast<uint64_t>(metrics->drifts_detected));
  inspector_->set_recorder(metrics->episodes.get());
  return Status::OK();
}

Result<PipelineMetrics> DriftAwarePipeline::Run(
    video::StreamGenerator* stream) {
  PipelineMetrics metrics;
  AttachObservability(&metrics);
  inspector_->set_recorder(metrics.episodes.get());
  obs::Counter& frame_counter =
      metrics.registry->GetCounter("vdrift.pipeline.frames");
  obs::Counter& drift_counter =
      metrics.registry->GetCounter("vdrift.pipeline.drifts");
  {
    obs::TraceSpan run_span(metrics.registry.get(), kRunSpan);
    video::Frame frame;
    while (stream->Next(&frame)) {
      metrics.frames += 1;
      frame_counter.Increment();
      if (config_.run_queries) RecordQueries(frame, &metrics);
      conformal::DriftInspector::Observation observation;
      {
        obs::TraceSpan detect_span(metrics.registry.get(), kDetectSpan);
        observation = inspector_->Observe(frame.pixels);
      }
      if (observation.drift) {
        metrics.drifts_detected += 1;
        drift_counter.Increment();
        metrics.drift_frames.push_back(frame.truth.frame_index);
        VDRIFT_RETURN_NOT_OK(HandleDrift(stream, &metrics));
      }
    }
  }
  DeriveTimingFields(&metrics);
  return metrics;
}

OdinPipeline::OdinPipeline(
    select::ModelRegistry* registry,
    const std::vector<std::vector<video::Frame>>& training_frames,
    const Config& config)
    : registry_(registry),
      config_(config),
      odin_(config.odin,
            registry->at(config.encoder_model)
                .profile->vae()
                ->config()
                .latent_dim) {
  VDRIFT_CHECK(registry_ != nullptr && !registry_->empty());
  VDRIFT_CHECK(static_cast<int>(training_frames.size()) ==
               registry_->size());
  const conformal::DistributionProfile& encoder =
      *registry_->at(config_.encoder_model).profile;
  for (int i = 0; i < registry_->size(); ++i) {
    std::vector<std::vector<float>> latents;
    latents.reserve(training_frames[static_cast<size_t>(i)].size());
    for (const video::Frame& f : training_frames[static_cast<size_t>(i)]) {
      latents.push_back(encoder.Encode(f.pixels));
    }
    odin_.AddPermanentCluster(latents, i);
  }
}

Result<PipelineMetrics> OdinPipeline::Run(video::StreamGenerator* stream) {
  PipelineMetrics metrics;
  AttachObservability(&metrics);
  const conformal::DistributionProfile& encoder =
      *registry_->at(config_.encoder_model).profile;
  obs::TraceSpan run_span(metrics.registry.get(), kRunSpan);
  video::Frame frame;
  while (stream->Next(&frame)) {
    metrics.frames += 1;
    metrics.registry->GetCounter("vdrift.pipeline.frames").Increment();
    std::vector<float> latent;
    baseline::OdinObservation observation;
    {
      obs::TraceSpan detect_span(metrics.registry.get(), kDetectSpan);
      latent = encoder.Encode(frame.pixels);
      observation = odin_.Observe(latent);
    }
    if (observation.drift) {
      metrics.drifts_detected += 1;
      metrics.registry->GetCounter("vdrift.pipeline.drifts").Increment();
      metrics.drift_frames.push_back(frame.truth.frame_index);
      // ODIN-Specialize would train a model for the promoted cluster; in
      // the provisioned-models setting the new cluster is served by the
      // model of its nearest permanent sibling.
      int promoted = observation.promoted_cluster;
      int nearest = -1;
      double best = 0.0;
      for (int c = 0; c < odin_.num_clusters(); ++c) {
        if (c == promoted || odin_.cluster(c).model_index() < 0) continue;
        double d = stats::Euclidean(odin_.cluster(promoted).centroid(),
                                    odin_.cluster(c).centroid());
        if (nearest < 0 || d < best) {
          nearest = c;
          best = d;
        }
      }
      if (nearest >= 0) {
        metrics.selections.push_back(
            registry_->at(odin_.cluster(nearest).model_index()).name);
      }
    }
    // ODIN-Select: models of the assigned clusters (equal-weight
    // ensemble); frames in the temporary cluster fall back to the model
    // of the nearest permanent cluster.
    std::vector<int> models = observation.models;
    {
      obs::TraceSpan select_span(metrics.registry.get(), kSelectSpan);
      std::erase_if(models, [](int m) { return m < 0; });
      if (models.empty()) {
        int nearest = -1;
        double best = 0.0;
        for (int c = 0; c < odin_.num_clusters(); ++c) {
          if (odin_.cluster(c).model_index() < 0) continue;
          double d = odin_.cluster(c).DistanceTo(latent);
          if (nearest < 0 || d < best) {
            nearest = c;
            best = d;
          }
        }
        if (nearest >= 0) {
          models.push_back(odin_.cluster(nearest).model_index());
        }
      }
    }
    if (config_.run_queries && !models.empty()) {
      obs::TraceSpan query_span(metrics.registry.get(), kQuerySpan);
      SequenceAccuracy& acc = metrics.per_sequence[frame.truth.sequence_id];
      // Equal-weight ensemble over the selected models' count classifiers.
      std::vector<float> mixture;
      for (int m : models) {
        std::vector<float> p =
            registry_->at(m).count_model->PredictProba(frame.pixels);
        if (mixture.empty()) {
          mixture = p;
        } else {
          for (size_t i = 0; i < mixture.size(); ++i) mixture[i] += p[i];
        }
      }
      int predicted = static_cast<int>(
          std::max_element(mixture.begin(), mixture.end()) -
          mixture.begin());
      int truth = detect::CountLabel(
          frame.truth, registry_->at(models[0]).count_model->num_classes());
      acc.count_total += 1;
      acc.invocations += static_cast<int64_t>(models.size());
      if (predicted == truth) acc.count_correct += 1;
      if (config_.run_predicate) {
        // Majority vote of the selected models' predicate classifiers.
        int votes = 0;
        int voters = 0;
        for (int m : models) {
          if (registry_->at(m).predicate_model == nullptr) continue;
          votes += registry_->at(m).predicate_model->Predict(frame.pixels);
          ++voters;
        }
        if (voters > 0) {
          int p = votes * 2 >= voters ? 1 : 0;
          acc.predicate_total += 1;
          if (p == detect::PredicateLabel(frame.truth)) {
            acc.predicate_correct += 1;
          }
        }
      }
    }
  }
  run_span.Stop();
  DeriveTimingFields(&metrics);
  return metrics;
}

Result<PipelineMetrics> StaticDetectorPipeline::RunDetector(
    detect::SimulatedDetector* detector, video::StreamGenerator* stream,
    bool run_predicate) {
  if (detector == nullptr) {
    return Status::InvalidArgument("detector is null");
  }
  PipelineMetrics metrics;
  AttachObservability(&metrics);
  {
    obs::TraceSpan run_span(metrics.registry.get(), kRunSpan);
    video::Frame frame;
    while (stream->Next(&frame)) {
      metrics.frames += 1;
      SequenceAccuracy& acc = metrics.per_sequence[frame.truth.sequence_id];
      int predicted = detector->PredictCount(frame.pixels);
      int truth = detect::CountLabel(frame.truth, detector->count_classes());
      acc.count_total += 1;
      acc.invocations += 1;
      if (predicted == truth) acc.count_correct += 1;
      if (run_predicate) {
        bool p = detector->PredictPredicate(frame.pixels);
        acc.predicate_total += 1;
        if (p == frame.truth.BusLeftOfCar()) acc.predicate_correct += 1;
      }
    }
  }
  metrics.total_seconds = metrics.registry->GetHistogram(kRunSpan).sum();
  // A drift-oblivious detector does nothing but query work.
  metrics.query_seconds = metrics.total_seconds;
  return metrics;
}

Result<PipelineMetrics> StaticDetectorPipeline::RunOracle(
    int work_dim, video::StreamGenerator* stream) {
  PipelineMetrics metrics;
  AttachObservability(&metrics);
  detect::OracleAnnotator oracle(work_dim);
  {
    obs::TraceSpan run_span(metrics.registry.get(), kRunSpan);
    video::Frame frame;
    while (stream->Next(&frame)) {
      metrics.frames += 1;
      SequenceAccuracy& acc = metrics.per_sequence[frame.truth.sequence_id];
      video::FrameTruth truth = oracle.Annotate(frame);
      acc.count_total += 1;
      acc.invocations += 1;
      // The oracle *is* the ground-truth source: perfect accuracy, as the
      // paper notes for Mask R-CNN in Fig. 7.
      if (truth.CarCount() == frame.truth.CarCount()) acc.count_correct += 1;
      acc.predicate_total += 1;
      if (truth.BusLeftOfCar() == frame.truth.BusLeftOfCar()) {
        acc.predicate_correct += 1;
      }
    }
  }
  metrics.total_seconds = metrics.registry->GetHistogram(kRunSpan).sum();
  metrics.query_seconds = metrics.total_seconds;
  return metrics;
}

}  // namespace vdrift::pipeline
