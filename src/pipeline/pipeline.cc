#include "pipeline/pipeline.h"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <utility>

#include "common/logging.h"
#include "obs/labels.h"
#include "obs/timer.h"
#include "pipeline/checkpoint.h"
#include "stats/distance.h"

namespace vdrift::pipeline {

namespace {

// Span/metric names of the per-run registry. The *_seconds histograms are
// per-section latency distributions; PipelineMetrics' timing fields are
// their sums.
constexpr char kRunSpan[] = "vdrift.pipeline.run_seconds";
constexpr char kDetectSpan[] = "vdrift.pipeline.detect_seconds";
constexpr char kSelectSpan[] = "vdrift.pipeline.select_seconds";
constexpr char kQuerySpan[] = "vdrift.pipeline.query_seconds";

// Creates the per-run registry + episode recorder on `metrics`.
void AttachObservability(PipelineMetrics* metrics) {
  metrics->registry = std::make_shared<obs::MetricsRegistry>();
  metrics->episodes = std::make_shared<obs::EpisodeRecorder>();
}

// Copies the span sums into the legacy timing fields.
void DeriveTimingFields(PipelineMetrics* metrics, const std::string& run,
                        const std::string& detect, const std::string& select,
                        const std::string& query) {
  obs::MetricsRegistry& reg = *metrics->registry;
  metrics->total_seconds = reg.GetHistogram(run).sum();
  metrics->detect_seconds = reg.GetHistogram(detect).sum();
  metrics->select_seconds = reg.GetHistogram(select).sum();
  metrics->query_seconds = reg.GetHistogram(query).sum();
}

void DeriveTimingFields(PipelineMetrics* metrics) {
  DeriveTimingFields(metrics, kRunSpan, kDetectSpan, kSelectSpan, kQuerySpan);
}

// Detection-lag histogram layout: frames between the true distribution
// change and DI's declaration, spanning 1 frame to 1M frames at constant
// relative resolution.
obs::HistogramOptions DetectLagOptions() {
  obs::HistogramOptions options;
  options.scale = obs::HistogramOptions::Scale::kLog;
  options.min_value = 1.0;
  options.max_value = 1e6;
  options.bucket_count = 64;
  return options;
}

// True iff every element is finite. Only called on the drift-handling
// path (recovery/training windows), never per streamed frame — the main
// loop's non-finite screen is the DI score check, which is O(1).
bool AllFinite(const tensor::Tensor& tensor) {
  for (int64_t i = 0; i < tensor.size(); ++i) {
    if (!std::isfinite(tensor[i])) return false;
  }
  return true;
}

}  // namespace

PipelineObsOptions PipelineObsOptions::FromEnv() {
  PipelineObsOptions options;
  // vdrift-lint: allow(no-ambient-nondeterminism): documented env knob
  if (const char* v = std::getenv("VDRIFT_SAMPLE_INTERVAL")) {
    options.sample_interval_frames = std::max(0, std::atoi(v));
  }
  // vdrift-lint: allow(no-ambient-nondeterminism): documented env knob
  if (const char* v = std::getenv("VDRIFT_SLO_SPEC")) options.slo_spec = v;
  // vdrift-lint: allow(no-ambient-nondeterminism): documented env knob
  if (const char* v = std::getenv("VDRIFT_METRICS_JSONL")) {
    options.jsonl_path = v;
  }
  // vdrift-lint: allow(no-ambient-nondeterminism): documented env knob
  if (const char* v = std::getenv("VDRIFT_STREAM_LABEL")) {
    options.stream_label = v;
  }
  return options;
}

SequenceAccuracy PipelineMetrics::Totals() const {
  SequenceAccuracy total;
  for (const auto& [id, acc] : per_sequence) {
    total.count_correct += acc.count_correct;
    total.count_total += acc.count_total;
    total.predicate_correct += acc.predicate_correct;
    total.predicate_total += acc.predicate_total;
    total.invocations += acc.invocations;
  }
  return total;
}

DriftAwarePipeline::DriftAwarePipeline(
    select::ModelRegistry* registry,
    std::vector<std::vector<select::LabeledFrame>> calibration_samples,
    const PipelineConfig& config)
    : registry_(registry),
      calibration_samples_(std::move(calibration_samples)),
      config_(config),
      oracle_(0),
      rng_(config.seed),
      deployed_(config.initial_model) {
  // vdrift-lint: allow(no-data-dependent-check): null-wiring bug, not data
  VDRIFT_CHECK(registry_ != nullptr && !registry_->empty());
  // vdrift-lint: allow(no-data-dependent-check): ctor config contract
  VDRIFT_CHECK(deployed_ >= 0 && deployed_ < registry_->size());
  if (config_.selector == PipelineConfig::Selector::kMsbo) {
    // vdrift-lint: allow(no-data-dependent-check): ctor config contract
    VDRIFT_CHECK(static_cast<int>(calibration_samples_.size()) ==
                 registry_->size())
        << "MSBO needs one calibration sample per model";
    // Calibration itself is deferred to the first Run: its failure modes
    // are data-dependent (empty samples, missing ensembles) and surface
    // as a Status there instead of aborting construction.
  }
  inspector_ = std::make_unique<conformal::DriftInspector>(
      registry_->at(deployed_).profile.get(), config_.di, config_.seed);
  AttachRunObservability();
}

void DriftAwarePipeline::AttachRunObservability() {
  AttachObservability(&metrics_);
  const PipelineObsOptions& obs = config_.obs;
  if (obs.shared_registry != nullptr) {
    // Fleet mode: record into the caller's registry so labeled per-stream
    // series and unlabeled aggregates coexist. The registry outlives this
    // pipeline object, so its series survive a shard restart.
    metrics_.registry = obs.shared_registry;
  }
  auto named = [&](const char* base) {
    return obs.stream_label.empty()
               ? std::string(base)
               : obs::FormatMetricKey(base, {{"stream", obs.stream_label}});
  };
  names_.run_span = named(kRunSpan);
  names_.detect_span = named(kDetectSpan);
  names_.select_span = named(kSelectSpan);
  names_.query_span = named(kQuerySpan);
  names_.frames = named("vdrift.pipeline.frames");
  names_.drifts = named("vdrift.pipeline.drifts");
  names_.frames_dropped = named("vdrift.pipeline.frames_dropped");
  names_.selection_failures = named("vdrift.pipeline.selection_failures");
  names_.redeployments = named("vdrift.pipeline.redeployments");
  names_.checkpoint_failures = named("vdrift.pipeline.checkpoint_failures");
  names_.detect_lag = named("vdrift.pipeline.detect_lag_frames");
  names_.drift_oblivious = named("vdrift.pipeline.drift_oblivious");
  names_.incumbent_fallbacks = named("vdrift.pipeline.incumbent_fallbacks");
  names_.annotator_deferrals = named("vdrift.pipeline.annotator_deferrals");
  names_.annotator_errors = named("vdrift.pipeline.annotator_errors");
  names_.selector_retries = named("vdrift.pipeline.selector_retries");
  names_.recalibrate_failures = named("vdrift.pipeline.recalibrate_failures");
  names_.martingale = named("vdrift.di.martingale");
  names_.p_value = named("vdrift.di.p_value");
  last_sample_frame_ = 0;
  last_p_value_ = 1.0;
  last_sequence_id_ = -1;
  frames_since_sequence_change_ = 0;
  metrics_.sampler.reset();
  metrics_.watchdog.reset();
  if (obs.sample_interval_frames <= 0) return;
  obs::MetricsSampler::Options sampler_options;
  sampler_options.max_windows = obs.max_windows;
  sampler_options.jsonl_path = obs.jsonl_path;
  metrics_.sampler = std::make_shared<obs::MetricsSampler>(
      metrics_.registry.get(), sampler_options);
  if (obs.slo_spec.empty()) return;
  std::string spec =
      obs.slo_spec == "default" ? obs::DefaultSloSpec() : obs.slo_spec;
  Result<std::vector<obs::SloRule>> rules = obs::ParseSloSpec(spec);
  if (!rules.ok()) {
    // A typo in VDRIFT_SLO_SPEC must not kill the serving run.
    VDRIFT_LOG_WARNING << "SLO watchdog disabled: "
                       << rules.status().ToString();
    return;
  }
  metrics_.watchdog =
      std::make_shared<obs::HealthWatchdog>(std::move(rules).value());
}

void DriftAwarePipeline::TickObs(bool force) {
  if (metrics_.sampler == nullptr) return;
  int64_t frame_clock = metrics_.frames;
  int64_t elapsed = frame_clock - last_sample_frame_;
  if (elapsed < (force ? 1 : config_.obs.sample_interval_frames)) return;
  // Mirror the non-counter pipeline state into gauges so windows (and SLO
  // rules) can see it. Counter-backed state is already in the registry.
  obs::MetricsRegistry& reg = *metrics_.registry;
  const DegradationStats& degradation = metrics_.degradation;
  reg.GetGauge(names_.drift_oblivious).Set(drift_oblivious_ ? 1.0 : 0.0);
  reg.GetGauge(names_.incumbent_fallbacks)
      .Set(static_cast<double>(degradation.incumbent_fallbacks));
  reg.GetGauge(names_.annotator_deferrals)
      .Set(static_cast<double>(degradation.annotator_deferrals));
  reg.GetGauge(names_.annotator_errors)
      .Set(static_cast<double>(degradation.annotator_errors));
  reg.GetGauge(names_.selector_retries)
      .Set(static_cast<double>(degradation.selector_retries));
  reg.GetGauge(names_.recalibrate_failures)
      .Set(static_cast<double>(degradation.recalibrate_failures));
  reg.GetGauge(names_.martingale).Set(inspector_->martingale_value());
  reg.GetGauge(names_.p_value).Set(last_p_value_);
  obs::MetricsWindow window =
      metrics_.sampler->Sample(static_cast<double>(frame_clock));
  last_sample_frame_ = frame_clock;
  if (metrics_.watchdog == nullptr) return;
  for (const obs::AlertEvent& alert : metrics_.watchdog->Evaluate(window)) {
    reg.GetCounter("vdrift.slo.alerts", {{"rule", alert.rule}}).Increment();
    metrics_.episodes->RecordAlert({frame_clock, alert.rule, alert.ToJson()});
    VDRIFT_LOG_WARNING << "SLO alert: " << alert.message;
  }
}

Status DriftAwarePipeline::Recalibrate() {
  VDRIFT_ASSIGN_OR_RETURN(
      calibration_, select::CalibrateMsbo(*registry_, calibration_samples_));
  calibrated_ = true;
  return Status::OK();
}

Status DriftAwarePipeline::EnsureCalibrated() {
  if (calibrated_ || config_.selector != PipelineConfig::Selector::kMsbo) {
    return Status::OK();
  }
  return Recalibrate();
}

void DriftAwarePipeline::RecordQueries(const video::Frame& frame,
                                       PipelineMetrics* metrics) {
  obs::TraceSpan query_span(metrics->registry.get(), names_.query_span);
  SequenceAccuracy& acc = metrics->per_sequence[frame.truth.sequence_id];
  const select::ModelEntry& entry = registry_->at(deployed_);
  int count_classes = entry.count_model->num_classes();
  int predicted = entry.count_model->Predict(frame.pixels);
  int truth = detect::CountLabel(frame.truth, count_classes);
  acc.count_total += 1;
  acc.invocations += 1;
  if (predicted == truth) acc.count_correct += 1;
  if (config_.run_predicate && entry.predicate_model != nullptr) {
    int p = entry.predicate_model->Predict(frame.pixels);
    acc.predicate_total += 1;
    if (p == detect::PredicateLabel(frame.truth)) acc.predicate_correct += 1;
  }
}

Result<select::Selection> DriftAwarePipeline::AttemptSelection(
    const std::vector<video::Frame>& window, PipelineMetrics* metrics) {
  fault::FaultInjector* injector = config_.injector;
  if (injector != nullptr) {
    // The selector's real failure surfaces: the registry read that loads
    // candidate models, and the selection computation itself.
    if (injector->ShouldInject(fault::FaultKind::kIoFail)) {
      return Status::IoError("injected: model registry read failed");
    }
    if (injector->ShouldInject(fault::FaultKind::kSelectorFail)) {
      return Status::Internal("injected: transient selector failure");
    }
  }
  if (config_.selector == PipelineConfig::Selector::kMsbo) {
    std::vector<select::LabeledFrame> labeled;
    labeled.reserve(window.size());
    int count_classes = config_.provision.count_classes;
    for (const video::Frame& f : window) {
      if (injector != nullptr) {
        if (injector->ShouldInject(fault::FaultKind::kAnnotatorDeadline)) {
          // Label arrives too late for this selection round; the frame's
          // re-annotation is deferred rather than blocking recovery.
          metrics->degradation.annotator_deferrals += 1;
          continue;
        }
        if (injector->ShouldInject(fault::FaultKind::kAnnotatorError)) {
          metrics->degradation.annotator_errors += 1;
          continue;
        }
      }
      video::FrameTruth truth = oracle_.Annotate(f);
      labeled.push_back({f.pixels, detect::CountLabel(truth, count_classes)});
    }
    if (labeled.empty()) {
      return Status::DeadlineExceeded(
          "no recovery frame was annotated in time");
    }
    select::Msbo msbo(registry_, calibration_, config_.msbo);
    return msbo.Select(labeled);
  }
  select::Msbi msbi(registry_, config_.msbi);
  return msbi.Select(video::PixelsOf(window));
}

void DriftAwarePipeline::AdvanceLagClock(const video::Frame& frame) {
  // A ground-truth sequence change is the true drift onset the next
  // detection is measured against.
  if (frame.truth.sequence_id != last_sequence_id_) {
    last_sequence_id_ = frame.truth.sequence_id;
    frames_since_sequence_change_ = 0;
  } else {
    frames_since_sequence_change_ += 1;
  }
}

void DriftAwarePipeline::BeginDriftHandling() {
  recovery_ = DriftRecovery{};
  recovery_.phase = DriftRecovery::Phase::kWindow;
  recovery_.target = config_.recovery_window;
  recovery_.backoff = std::max(1, config_.degrade.backoff_initial_frames);
}

void DriftAwarePipeline::FinishRedeployment(PipelineMetrics* metrics) {
  metrics->episodes->AnnotateDecision(metrics->selections.back());
  metrics->registry->GetCounter(names_.redeployments).Increment();
  // Re-arm DI against the newly deployed distribution.
  inspector_ = std::make_unique<conformal::DriftInspector>(
      registry_->at(deployed_).profile.get(), config_.di,
      config_.seed + static_cast<uint64_t>(metrics->drifts_detected));
  inspector_->set_recorder(metrics->episodes.get());
  recovery_ = DriftRecovery{};
}

Status DriftAwarePipeline::ContinueDriftHandling(video::FrameSource* stream,
                                                 PipelineMetrics* metrics,
                                                 int64_t* admitted,
                                                 int64_t max_frames) {
  // Collect frames for the recovery/training windows (frames keep being
  // processed by the still-deployed model while the selector decides).
  // Every pulled frame spends the same admitted-frame budget as the main
  // loop, so a slice never overshoots RunOptions::max_frames; when the
  // budget runs out mid-collection the state parks in recovery_ and the
  // next Run call (or a resumed checkpoint) continues it. Non-finite
  // frames are useless to both the selector and the queries: dropped +
  // counted.
  enum class Collect { kFilled, kBudget, kStreamEnd };
  video::Frame frame;
  auto collect = [&](std::vector<video::Frame>* dest, int target) {
    while (static_cast<int>(dest->size()) < target) {
      if (max_frames >= 0 && *admitted >= max_frames) return Collect::kBudget;
      if (!stream->Next(&frame)) return Collect::kStreamEnd;
      *admitted += 1;
      metrics->frames += 1;
      metrics->registry->GetCounter(names_.frames).Increment();
      AdvanceLagClock(frame);
      if (!AllFinite(frame.pixels)) {
        metrics->degradation.frames_dropped += 1;
        metrics->registry->GetCounter(names_.frames_dropped).Increment();
        continue;  // never select or train on poisoned pixels
      }
      if (config_.run_queries) RecordQueries(frame, metrics);
      dest->push_back(frame);
    }
    return Collect::kFilled;
  };

  // Bounded retry with exponential backoff in stream time: each failed
  // attempt widens the recovery window before trying again, and after
  // max_selection_retries the drift is resolved by keeping the incumbent
  // (better a possibly-stale model than a dead pipeline).
  while (recovery_.phase == DriftRecovery::Phase::kWindow) {
    Collect got = collect(&recovery_.window, recovery_.target);
    if (got == Collect::kBudget) return Status::OK();  // parked at the slice
    if (recovery_.initial_collect) {
      if (recovery_.window.empty()) {
        recovery_ = DriftRecovery{};
        return Status::OK();  // stream ended at the drift
      }
      recovery_.initial_collect = false;
      recovery_.target = static_cast<int>(recovery_.window.size());
    }
    Result<select::Selection> attempted = [&] {
      obs::TraceSpan select_span(metrics->registry.get(), names_.select_span);
      return AttemptSelection(recovery_.window, metrics);
    }();
    if (!attempted.ok()) {
      metrics->degradation.selector_failures += 1;
      metrics->registry->GetCounter(names_.selection_failures).Increment();
      if (recovery_.attempt >= config_.degrade.max_selection_retries) {
        metrics->degradation.incumbent_fallbacks += 1;
        metrics->selections.push_back("<incumbent>");
        metrics->episodes->AnnotateDecision("<incumbent>");
        ++consecutive_selection_failures_;
        if (config_.degrade.max_consecutive_failures > 0 &&
            consecutive_selection_failures_ >=
                config_.degrade.max_consecutive_failures) {
          drift_oblivious_ = true;
          metrics->degradation.drift_oblivious = true;
        }
        inspector_->Reset();
        recovery_ = DriftRecovery{};
        return Status::OK();
      }
      recovery_.attempt += 1;
      metrics->degradation.selector_retries += 1;
      recovery_.target += recovery_.backoff;
      recovery_.backoff *= 2;
      continue;
    }
    select::Selection selection = std::move(attempted).value();
    consecutive_selection_failures_ = 0;
    metrics->selection_invocations += selection.invocations;
    if (!selection.train_new_model) {
      deployed_ = selection.model_index;
      metrics->selections.push_back(registry_->at(deployed_).name);
      FinishRedeployment(metrics);
      return Status::OK();
    }
    if (!config_.allow_training_new) {
      // Keep the best-effort current deployment.
      metrics->selections.push_back("<none>");
      metrics->episodes->AnnotateDecision("<none>");
      inspector_->Reset();
      recovery_ = DriftRecovery{};
      return Status::OK();
    }
    // trainNewModel() (§5.4): accumulate more frames, annotate with the
    // oracle, and provision a full model entry.
    recovery_.training = recovery_.window;
    recovery_.phase = DriftRecovery::Phase::kTraining;
  }

  if (recovery_.phase == DriftRecovery::Phase::kTraining) {
    Collect got = collect(&recovery_.training, config_.new_model_window);
    if (got == Collect::kBudget) return Status::OK();  // parked at the slice
    std::string name = config_.trained_model_prefix +
                       std::to_string(metrics->new_models_trained);
    VDRIFT_ASSIGN_OR_RETURN(
        select::ModelEntry entry,
        ProvisionModel(name, recovery_.training, config_.provision, &rng_));
    int index = registry_->Add(std::move(entry));
    calibration_samples_.push_back(MakeLabeledSample(
        recovery_.training, config_.provision.count_classes, 32, &rng_));
    if (config_.selector == PipelineConfig::Selector::kMsbo) {
      Status recalibrated = Recalibrate();
      if (!recalibrated.ok()) {
        // Keep serving on the old calibration, extended with a permissive
        // baseline for the new model so it stays selectable; the next
        // successful Recalibrate replaces the whole vector anyway.
        metrics->degradation.recalibrate_failures += 1;
        calibration_.pc_avg.push_back(1.0);
        calibration_.sigma.push_back(0.0);
      }
    }
    deployed_ = index;
    metrics->new_models_trained += 1;
    metrics->selections.push_back(name);
    FinishRedeployment(metrics);
  }
  return Status::OK();
}

Status DriftAwarePipeline::AdoptModel(
    const select::ModelEntry& entry,
    const std::vector<select::LabeledFrame>& sample) {
  if (registry_->FindByName(entry.name) >= 0) return Status::OK();
  registry_->Add(entry);
  calibration_samples_.push_back(sample);
  if (config_.selector == PipelineConfig::Selector::kMsbo && calibrated_) {
    Status recalibrated = Recalibrate();
    if (!recalibrated.ok()) {
      // Same degradation contract as trainNewModel: the adopted entry gets
      // a permissive calibration extension and stays selectable.
      metrics_.degradation.recalibrate_failures += 1;
      calibration_.pc_avg.push_back(1.0);
      calibration_.sigma.push_back(0.0);
    }
  }
  return Status::OK();
}

Result<PipelineMetrics> DriftAwarePipeline::Run(video::FrameSource* stream,
                                                const RunOptions& options) {
  VDRIFT_RETURN_NOT_OK(EnsureCalibrated());
  inspector_->set_recorder(metrics_.episodes.get());
  obs::Counter& frame_counter =
      metrics_.registry->GetCounter(names_.frames);
  obs::Counter& drift_counter =
      metrics_.registry->GetCounter(names_.drifts);
  obs::Counter& dropped_counter =
      metrics_.registry->GetCounter(names_.frames_dropped);
  obs::Histogram& detect_lag =
      metrics_.registry->GetHistogram(names_.detect_lag, DetectLagOptions());
  {
    obs::TraceSpan run_span(metrics_.registry.get(), names_.run_span);
    video::Frame frame;
    int64_t admitted = 0;
    const int64_t max_frames = options.max_frames;
    // Drift handling parked at the previous slice boundary continues
    // first — its frames draw from this call's budget.
    if (recovery_.phase != DriftRecovery::Phase::kIdle &&
        (max_frames < 0 || admitted < max_frames)) {
      VDRIFT_RETURN_NOT_OK(
          ContinueDriftHandling(stream, &metrics_, &admitted, max_frames));
      TickObs(false);
    }
    while ((max_frames < 0 || admitted < max_frames) &&
           recovery_.phase == DriftRecovery::Phase::kIdle &&
           stream->Next(&frame)) {
      ++admitted;
      metrics_.frames += 1;
      frame_counter.Increment();
      AdvanceLagClock(frame);
      if (drift_oblivious_) {
        // Degraded endgame: DI is disarmed, the incumbent keeps serving.
        if (config_.run_queries) RecordQueries(frame, &metrics_);
        TickObs(false);
        continue;
      }
      Result<conformal::DriftInspector::Observation> observation = [&] {
        obs::TraceSpan detect_span(metrics_.registry.get(),
                                   names_.detect_span);
        return inspector_->TryObserve(frame.pixels);
      }();
      if (!observation.ok()) {
        // Frame too corrupt to score (NaN/Inf): skip it, count it, and
        // keep the run alive — one bad frame must not kill the stream.
        metrics_.degradation.frames_dropped += 1;
        dropped_counter.Increment();
        TickObs(false);
        continue;
      }
      last_p_value_ = observation.value().p_value;
      if (config_.run_queries) RecordQueries(frame, &metrics_);
      if (observation.value().drift) {
        metrics_.drifts_detected += 1;
        drift_counter.Increment();
        metrics_.drift_frames.push_back(frame.truth.frame_index);
        const int64_t lag = std::max<int64_t>(1, frames_since_sequence_change_);
        metrics_.detect_lags.push_back(lag);
        detect_lag.Record(static_cast<double>(lag));
        BeginDriftHandling();
        VDRIFT_RETURN_NOT_OK(
            ContinueDriftHandling(stream, &metrics_, &admitted, max_frames));
      }
      TickObs(false);
    }
  }
  // Close the final partial window so the exported series covers every
  // admitted frame (the JSONL delta-sum invariant depends on this).
  TickObs(true);
  DeriveTimingFields(&metrics_, names_.run_span, names_.detect_span,
                     names_.select_span, names_.query_span);
  return metrics_;
}

Status DriftAwarePipeline::Checkpoint(const std::string& path,
                                      const video::FrameSource& stream) {
  PipelineCheckpoint cp;
  cp.registry_fingerprint.reserve(static_cast<size_t>(registry_->size()));
  for (int i = 0; i < registry_->size(); ++i) {
    cp.registry_fingerprint.push_back(registry_->at(i).name);
  }
  cp.deployed = deployed_;
  cp.drift_oblivious = drift_oblivious_;
  cp.consecutive_selection_failures = consecutive_selection_failures_;
  cp.pipeline_rng = rng_.state();
  cp.inspector = inspector_->SaveState();
  cp.calibration = calibration_;
  cp.calibrated = calibrated_;
  cp.stream_cursor = stream.position();
  cp.frames = metrics_.frames;
  cp.drifts_detected = metrics_.drifts_detected;
  cp.new_models_trained = metrics_.new_models_trained;
  cp.drift_frames = metrics_.drift_frames;
  cp.selections = metrics_.selections;
  cp.selection_invocations = metrics_.selection_invocations;
  cp.per_sequence = metrics_.per_sequence;
  cp.degradation = metrics_.degradation;
  cp.last_sequence_id = last_sequence_id_;
  cp.frames_since_sequence_change = frames_since_sequence_change_;
  cp.last_p_value = last_p_value_;
  cp.detect_lags = metrics_.detect_lags;
  cp.recovery_phase = static_cast<uint8_t>(recovery_.phase);
  cp.recovery_target = recovery_.target;
  cp.recovery_backoff = recovery_.backoff;
  cp.recovery_attempt = recovery_.attempt;
  cp.recovery_initial_collect = recovery_.initial_collect;
  cp.recovery_window = recovery_.window;
  cp.recovery_training = recovery_.training;
  Status written = WriteCheckpointFile(cp, path, config_.injector);
  if (!written.ok()) {
    metrics_.degradation.checkpoint_failures += 1;
    metrics_.registry->GetCounter(names_.checkpoint_failures).Increment();
  }
  return written;
}

Status DriftAwarePipeline::Resume(const std::string& path,
                                  video::FrameSource* stream) {
  // vdrift-lint: allow(no-data-dependent-check): null-wiring bug, not data
  VDRIFT_CHECK(stream != nullptr);
  Result<PipelineCheckpoint> read = ReadCheckpointFile(path, config_.injector);
  VDRIFT_RETURN_NOT_OK(read.status());
  const PipelineCheckpoint& cp = read.value();
  // Validate everything BEFORE touching pipeline state, so a failed
  // Resume leaves the cold-start pipeline intact for the fallback run.
  if (static_cast<int>(cp.registry_fingerprint.size()) != registry_->size()) {
    return Status::DataLoss(
        "checkpoint registry fingerprint has " +
        std::to_string(cp.registry_fingerprint.size()) +
        " models, live registry has " + std::to_string(registry_->size()));
  }
  for (int i = 0; i < registry_->size(); ++i) {
    if (cp.registry_fingerprint[static_cast<size_t>(i)] !=
        registry_->at(i).name) {
      return Status::DataLoss("checkpoint model " + std::to_string(i) +
                              " is '" +
                              cp.registry_fingerprint[static_cast<size_t>(i)] +
                              "', live registry has '" + registry_->at(i).name +
                              "'");
    }
  }
  if (cp.deployed < 0 || cp.deployed >= registry_->size()) {
    return Status::DataLoss("checkpoint deployed index out of range: " +
                            std::to_string(cp.deployed));
  }
  if (cp.stream_cursor < 0) {
    return Status::DataLoss("checkpoint stream cursor is negative");
  }
  stream->Reset();
  video::Frame frame;
  for (int64_t i = 0; i < cp.stream_cursor; ++i) {
    if (!stream->Next(&frame)) {
      return Status::DataLoss("stream ended at frame " + std::to_string(i) +
                              ", before the checkpoint cursor " +
                              std::to_string(cp.stream_cursor));
    }
  }
  deployed_ = cp.deployed;
  drift_oblivious_ = cp.drift_oblivious;
  consecutive_selection_failures_ = cp.consecutive_selection_failures;
  rng_.set_state(cp.pipeline_rng);
  calibration_ = cp.calibration;
  calibrated_ = cp.calibrated;
  inspector_ = std::make_unique<conformal::DriftInspector>(
      registry_->at(deployed_).profile.get(), config_.di, config_.seed);
  inspector_->RestoreState(cp.inspector);
  metrics_ = PipelineMetrics{};
  AttachRunObservability();
  metrics_.frames = cp.frames;
  metrics_.drifts_detected = cp.drifts_detected;
  metrics_.new_models_trained = cp.new_models_trained;
  metrics_.drift_frames = cp.drift_frames;
  metrics_.selections = cp.selections;
  metrics_.selection_invocations = cp.selection_invocations;
  metrics_.per_sequence = cp.per_sequence;
  metrics_.degradation = cp.degradation;
  // Detection-lag clock and the per-detection lags: AttachRunObservability
  // reset the clock, so restore it after, and replay the recorded lags
  // into the fresh per-run histogram so `detect_lag_frames` is
  // bit-identical to an uninterrupted run's.
  last_sequence_id_ = cp.last_sequence_id;
  frames_since_sequence_change_ = cp.frames_since_sequence_change;
  last_p_value_ = cp.last_p_value;
  metrics_.detect_lags = cp.detect_lags;
  if (config_.obs.shared_registry == nullptr) {
    // A private per-run registry is fresh, so the recorded lags are
    // replayed into it; a shared (fleet) registry outlives the pipeline
    // and already holds the pre-crash series — replaying would double
    // every observation.
    obs::Histogram& detect_lag =
        metrics_.registry->GetHistogram(names_.detect_lag, DetectLagOptions());
    for (int64_t lag : metrics_.detect_lags) {
      detect_lag.Record(static_cast<double>(lag));
    }
  }
  // Sampler cadence continues in the cumulative admitted-frame clock.
  last_sample_frame_ = metrics_.frames;
  // Drift handling parked at the interrupted slice continues where it
  // stopped, buffered frames included.
  recovery_ = DriftRecovery{};
  recovery_.phase = static_cast<DriftRecovery::Phase>(cp.recovery_phase);
  recovery_.target = cp.recovery_target;
  recovery_.backoff = cp.recovery_backoff;
  recovery_.attempt = cp.recovery_attempt;
  recovery_.initial_collect = cp.recovery_initial_collect;
  recovery_.window = cp.recovery_window;
  recovery_.training = cp.recovery_training;
  inspector_->set_recorder(metrics_.episodes.get());
  return Status::OK();
}

OdinPipeline::OdinPipeline(
    select::ModelRegistry* registry,
    const std::vector<std::vector<video::Frame>>& training_frames,
    const Config& config)
    : registry_(registry),
      config_(config),
      odin_(config.odin,
            registry->at(config.encoder_model)
                .profile->vae()
                ->config()
                .latent_dim) {
  // vdrift-lint: allow(no-data-dependent-check): null-wiring bug, not data
  VDRIFT_CHECK(registry_ != nullptr && !registry_->empty());
  // vdrift-lint: allow(no-data-dependent-check): harness wiring contract
  VDRIFT_CHECK(static_cast<int>(training_frames.size()) ==
               registry_->size());
  const conformal::DistributionProfile& encoder =
      *registry_->at(config_.encoder_model).profile;
  for (int i = 0; i < registry_->size(); ++i) {
    std::vector<std::vector<float>> latents;
    latents.reserve(training_frames[static_cast<size_t>(i)].size());
    for (const video::Frame& f : training_frames[static_cast<size_t>(i)]) {
      latents.push_back(encoder.Encode(f.pixels));
    }
    odin_.AddPermanentCluster(latents, i);
  }
}

Result<PipelineMetrics> OdinPipeline::Run(video::FrameSource* stream) {
  PipelineMetrics metrics;
  AttachObservability(&metrics);
  const conformal::DistributionProfile& encoder =
      *registry_->at(config_.encoder_model).profile;
  obs::TraceSpan run_span(metrics.registry.get(), kRunSpan);
  video::Frame frame;
  while (stream->Next(&frame)) {
    metrics.frames += 1;
    metrics.registry->GetCounter("vdrift.pipeline.frames").Increment();
    std::vector<float> latent;
    baseline::OdinObservation observation;
    {
      obs::TraceSpan detect_span(metrics.registry.get(), kDetectSpan);
      latent = encoder.Encode(frame.pixels);
      observation = odin_.Observe(latent);
    }
    if (observation.drift) {
      metrics.drifts_detected += 1;
      metrics.registry->GetCounter("vdrift.pipeline.drifts").Increment();
      metrics.drift_frames.push_back(frame.truth.frame_index);
      // ODIN-Specialize would train a model for the promoted cluster; in
      // the provisioned-models setting the new cluster is served by the
      // model of its nearest permanent sibling.
      int promoted = observation.promoted_cluster;
      int nearest = -1;
      double best = 0.0;
      for (int c = 0; c < odin_.num_clusters(); ++c) {
        if (c == promoted || odin_.cluster(c).model_index() < 0) continue;
        double d = stats::Euclidean(odin_.cluster(promoted).centroid(),
                                    odin_.cluster(c).centroid());
        if (nearest < 0 || d < best) {
          nearest = c;
          best = d;
        }
      }
      if (nearest >= 0) {
        metrics.selections.push_back(
            registry_->at(odin_.cluster(nearest).model_index()).name);
      }
    }
    // ODIN-Select: models of the assigned clusters (equal-weight
    // ensemble); frames in the temporary cluster fall back to the model
    // of the nearest permanent cluster.
    std::vector<int> models = observation.models;
    {
      obs::TraceSpan select_span(metrics.registry.get(), kSelectSpan);
      std::erase_if(models, [](int m) { return m < 0; });
      if (models.empty()) {
        int nearest = -1;
        double best = 0.0;
        for (int c = 0; c < odin_.num_clusters(); ++c) {
          if (odin_.cluster(c).model_index() < 0) continue;
          double d = odin_.cluster(c).DistanceTo(latent);
          if (nearest < 0 || d < best) {
            nearest = c;
            best = d;
          }
        }
        if (nearest >= 0) {
          models.push_back(odin_.cluster(nearest).model_index());
        }
      }
    }
    if (config_.run_queries && !models.empty()) {
      obs::TraceSpan query_span(metrics.registry.get(), kQuerySpan);
      SequenceAccuracy& acc = metrics.per_sequence[frame.truth.sequence_id];
      // Equal-weight ensemble over the selected models' count classifiers.
      std::vector<float> mixture;
      for (int m : models) {
        std::vector<float> p =
            registry_->at(m).count_model->PredictProba(frame.pixels);
        if (mixture.empty()) {
          mixture = p;
        } else {
          for (size_t i = 0; i < mixture.size(); ++i) mixture[i] += p[i];
        }
      }
      int predicted = static_cast<int>(
          std::max_element(mixture.begin(), mixture.end()) -
          mixture.begin());
      int truth = detect::CountLabel(
          frame.truth, registry_->at(models[0]).count_model->num_classes());
      acc.count_total += 1;
      acc.invocations += static_cast<int64_t>(models.size());
      if (predicted == truth) acc.count_correct += 1;
      if (config_.run_predicate) {
        // Majority vote of the selected models' predicate classifiers.
        int votes = 0;
        int voters = 0;
        for (int m : models) {
          if (registry_->at(m).predicate_model == nullptr) continue;
          votes += registry_->at(m).predicate_model->Predict(frame.pixels);
          ++voters;
        }
        if (voters > 0) {
          int p = votes * 2 >= voters ? 1 : 0;
          acc.predicate_total += 1;
          if (p == detect::PredicateLabel(frame.truth)) {
            acc.predicate_correct += 1;
          }
        }
      }
    }
  }
  run_span.Stop();
  DeriveTimingFields(&metrics);
  return metrics;
}

Result<PipelineMetrics> StaticDetectorPipeline::RunDetector(
    detect::SimulatedDetector* detector, video::FrameSource* stream,
    bool run_predicate) {
  if (detector == nullptr) {
    return Status::InvalidArgument("detector is null");
  }
  PipelineMetrics metrics;
  AttachObservability(&metrics);
  {
    obs::TraceSpan run_span(metrics.registry.get(), kRunSpan);
    video::Frame frame;
    while (stream->Next(&frame)) {
      metrics.frames += 1;
      SequenceAccuracy& acc = metrics.per_sequence[frame.truth.sequence_id];
      int predicted = detector->PredictCount(frame.pixels);
      int truth = detect::CountLabel(frame.truth, detector->count_classes());
      acc.count_total += 1;
      acc.invocations += 1;
      if (predicted == truth) acc.count_correct += 1;
      if (run_predicate) {
        // Score against detect::PredicateLabel, the same ground-truth
        // encoding every other pipeline uses, so accuracies compare.
        int p = detector->PredictPredicate(frame.pixels) ? 1 : 0;
        acc.predicate_total += 1;
        if (p == detect::PredicateLabel(frame.truth)) {
          acc.predicate_correct += 1;
        }
      }
    }
  }
  metrics.total_seconds = metrics.registry->GetHistogram(kRunSpan).sum();
  // A drift-oblivious detector does nothing but query work.
  metrics.query_seconds = metrics.total_seconds;
  return metrics;
}

Result<PipelineMetrics> StaticDetectorPipeline::RunOracle(
    int work_dim, video::FrameSource* stream) {
  PipelineMetrics metrics;
  AttachObservability(&metrics);
  detect::OracleAnnotator oracle(work_dim);
  {
    obs::TraceSpan run_span(metrics.registry.get(), kRunSpan);
    video::Frame frame;
    while (stream->Next(&frame)) {
      metrics.frames += 1;
      SequenceAccuracy& acc = metrics.per_sequence[frame.truth.sequence_id];
      video::FrameTruth truth = oracle.Annotate(frame);
      acc.count_total += 1;
      acc.invocations += 1;
      // The oracle *is* the ground-truth source: perfect accuracy, as the
      // paper notes for Mask R-CNN in Fig. 7.
      if (truth.CarCount() == frame.truth.CarCount()) acc.count_correct += 1;
      acc.predicate_total += 1;
      if (truth.BusLeftOfCar() == frame.truth.BusLeftOfCar()) {
        acc.predicate_correct += 1;
      }
    }
  }
  metrics.total_seconds = metrics.registry->GetHistogram(kRunSpan).sum();
  metrics.query_seconds = metrics.total_seconds;
  return metrics;
}

}  // namespace vdrift::pipeline
