#include "pipeline/checkpoint.h"

#include <cstring>
#include <utility>

#include "common/binio.h"

namespace vdrift::pipeline {

namespace {

constexpr char kMagic[8] = {'V', 'D', 'C', 'K', 'P', 'T', '0', '1'};
// v2 added the detection-lag clock, per-detection lags, and the parked
// drift-recovery state (including buffered frames). v1 files decode as
// kDataLoss — the documented cold-start fallback, same as any other
// unreadable checkpoint.
constexpr uint32_t kVersion = 2;
// Magic + version + payload length + CRC trailer.
constexpr size_t kEnvelopeBytes = sizeof(kMagic) + 4 + 8 + 4;

void EncodeRngState(const stats::Rng::State& state, BinaryWriter* writer) {
  writer->WriteU64(state.state);
  writer->WriteU64(state.inc);
  writer->WriteU8(state.has_spare ? 1 : 0);
  writer->WriteDouble(state.spare);
}

Status DecodeRngState(BinaryReader* reader, stats::Rng::State* state) {
  uint8_t has_spare = 0;
  VDRIFT_RETURN_NOT_OK(reader->ReadU64(&state->state));
  VDRIFT_RETURN_NOT_OK(reader->ReadU64(&state->inc));
  VDRIFT_RETURN_NOT_OK(reader->ReadU8(&has_spare));
  VDRIFT_RETURN_NOT_OK(reader->ReadDouble(&state->spare));
  state->has_spare = has_spare != 0;
  return Status::OK();
}

void EncodeFrame(const video::Frame& frame, BinaryWriter* writer) {
  writer->WriteI64Vec(frame.pixels.shape().dims());
  std::vector<float> data(frame.pixels.data(),
                          frame.pixels.data() + frame.pixels.size());
  writer->WriteFloatVec(data);
  writer->WriteI32(frame.truth.sequence_id);
  writer->WriteI64(frame.truth.frame_index);
  writer->WriteU32(static_cast<uint32_t>(frame.truth.objects.size()));
  for (const video::ObjectTruth& object : frame.truth.objects) {
    writer->WriteI32(static_cast<int32_t>(object.cls));
    writer->WriteF32(object.cx);
    writer->WriteF32(object.cy);
    writer->WriteF32(object.w);
    writer->WriteF32(object.h);
  }
}

Status DecodeFrame(BinaryReader* reader, video::Frame* frame) {
  std::vector<int64_t> dims;
  std::vector<float> data;
  VDRIFT_RETURN_NOT_OK(reader->ReadI64Vec(&dims));
  VDRIFT_RETURN_NOT_OK(reader->ReadFloatVec(&data));
  tensor::Shape shape(dims);
  if (shape.NumElements() != static_cast<int64_t>(data.size())) {
    return Status::DataLoss("checkpoint frame pixel payload has " +
                            std::to_string(data.size()) +
                            " floats for shape " + shape.ToString());
  }
  frame->pixels = tensor::Tensor(std::move(shape), std::move(data));
  VDRIFT_RETURN_NOT_OK(reader->ReadI32(&frame->truth.sequence_id));
  VDRIFT_RETURN_NOT_OK(reader->ReadI64(&frame->truth.frame_index));
  uint32_t objects = 0;
  VDRIFT_RETURN_NOT_OK(reader->ReadU32(&objects));
  if (objects > reader->remaining()) {
    return Status::DataLoss("truncated object list of declared length " +
                            std::to_string(objects));
  }
  frame->truth.objects.resize(objects);
  for (uint32_t i = 0; i < objects; ++i) {
    video::ObjectTruth& object = frame->truth.objects[i];
    int32_t cls = 0;
    VDRIFT_RETURN_NOT_OK(reader->ReadI32(&cls));
    object.cls = static_cast<video::ObjectClass>(cls);
    VDRIFT_RETURN_NOT_OK(reader->ReadF32(&object.cx));
    VDRIFT_RETURN_NOT_OK(reader->ReadF32(&object.cy));
    VDRIFT_RETURN_NOT_OK(reader->ReadF32(&object.w));
    VDRIFT_RETURN_NOT_OK(reader->ReadF32(&object.h));
  }
  return Status::OK();
}

void EncodeFrameVec(const std::vector<video::Frame>& frames,
                    BinaryWriter* writer) {
  writer->WriteU32(static_cast<uint32_t>(frames.size()));
  for (const video::Frame& frame : frames) EncodeFrame(frame, writer);
}

Status DecodeFrameVec(BinaryReader* reader, std::vector<video::Frame>* frames) {
  uint32_t n = 0;
  VDRIFT_RETURN_NOT_OK(reader->ReadU32(&n));
  if (n > reader->remaining()) {
    return Status::DataLoss("truncated frame list of declared length " +
                            std::to_string(n));
  }
  frames->resize(n);
  for (uint32_t i = 0; i < n; ++i) {
    VDRIFT_RETURN_NOT_OK(DecodeFrame(reader, &(*frames)[i]));
  }
  return Status::OK();
}

std::string EncodePayload(const PipelineCheckpoint& cp) {
  BinaryWriter writer;
  writer.WriteU32(static_cast<uint32_t>(cp.registry_fingerprint.size()));
  for (const std::string& name : cp.registry_fingerprint) {
    writer.WriteString(name);
  }
  writer.WriteI32(cp.deployed);
  writer.WriteU8(cp.drift_oblivious ? 1 : 0);
  writer.WriteI32(cp.consecutive_selection_failures);
  EncodeRngState(cp.pipeline_rng, &writer);
  writer.WriteI64(cp.inspector.frames_seen);
  EncodeRngState(cp.inspector.rng, &writer);
  writer.WriteDouble(cp.inspector.martingale.current);
  writer.WriteI64(cp.inspector.martingale.count);
  writer.WriteDouble(cp.inspector.martingale.last_delta);
  writer.WriteDouble(cp.inspector.martingale.last_bet);
  writer.WriteDoubleVec(cp.inspector.martingale.history);
  writer.WriteDoubleVec(cp.calibration.pc_avg);
  writer.WriteDoubleVec(cp.calibration.sigma);
  writer.WriteDouble(cp.calibration.global_h);
  writer.WriteU8(cp.calibrated ? 1 : 0);
  writer.WriteI64(cp.stream_cursor);
  writer.WriteI64(cp.frames);
  writer.WriteI32(cp.drifts_detected);
  writer.WriteI32(cp.new_models_trained);
  writer.WriteI64Vec(cp.drift_frames);
  writer.WriteU32(static_cast<uint32_t>(cp.selections.size()));
  for (const std::string& selection : cp.selections) {
    writer.WriteString(selection);
  }
  writer.WriteI64(cp.selection_invocations);
  writer.WriteU32(static_cast<uint32_t>(cp.per_sequence.size()));
  for (const auto& [id, acc] : cp.per_sequence) {
    writer.WriteI32(id);
    writer.WriteI64(acc.count_correct);
    writer.WriteI64(acc.count_total);
    writer.WriteI64(acc.predicate_correct);
    writer.WriteI64(acc.predicate_total);
    writer.WriteI64(acc.invocations);
  }
  writer.WriteI64(cp.degradation.frames_dropped);
  writer.WriteI64(cp.degradation.selector_failures);
  writer.WriteI64(cp.degradation.selector_retries);
  writer.WriteI64(cp.degradation.incumbent_fallbacks);
  writer.WriteI64(cp.degradation.annotator_deferrals);
  writer.WriteI64(cp.degradation.annotator_errors);
  writer.WriteI64(cp.degradation.recalibrate_failures);
  writer.WriteI64(cp.degradation.checkpoint_failures);
  writer.WriteU8(cp.degradation.drift_oblivious ? 1 : 0);
  // --- v2 fields ---
  writer.WriteI32(cp.last_sequence_id);
  writer.WriteI64(cp.frames_since_sequence_change);
  writer.WriteDouble(cp.last_p_value);
  writer.WriteI64Vec(cp.detect_lags);
  writer.WriteU8(cp.recovery_phase);
  writer.WriteI32(cp.recovery_target);
  writer.WriteI32(cp.recovery_backoff);
  writer.WriteI32(cp.recovery_attempt);
  writer.WriteU8(cp.recovery_initial_collect ? 1 : 0);
  EncodeFrameVec(cp.recovery_window, &writer);
  EncodeFrameVec(cp.recovery_training, &writer);
  return std::move(writer).TakeBytes();
}

Status DecodePayload(const std::string& payload, PipelineCheckpoint* cp) {
  BinaryReader reader(payload);
  uint32_t n = 0;
  VDRIFT_RETURN_NOT_OK(reader.ReadU32(&n));
  cp->registry_fingerprint.resize(n);
  for (uint32_t i = 0; i < n; ++i) {
    VDRIFT_RETURN_NOT_OK(reader.ReadString(&cp->registry_fingerprint[i]));
  }
  uint8_t flag = 0;
  VDRIFT_RETURN_NOT_OK(reader.ReadI32(&cp->deployed));
  VDRIFT_RETURN_NOT_OK(reader.ReadU8(&flag));
  cp->drift_oblivious = flag != 0;
  VDRIFT_RETURN_NOT_OK(reader.ReadI32(&cp->consecutive_selection_failures));
  VDRIFT_RETURN_NOT_OK(DecodeRngState(&reader, &cp->pipeline_rng));
  VDRIFT_RETURN_NOT_OK(reader.ReadI64(&cp->inspector.frames_seen));
  VDRIFT_RETURN_NOT_OK(DecodeRngState(&reader, &cp->inspector.rng));
  VDRIFT_RETURN_NOT_OK(reader.ReadDouble(&cp->inspector.martingale.current));
  VDRIFT_RETURN_NOT_OK(reader.ReadI64(&cp->inspector.martingale.count));
  VDRIFT_RETURN_NOT_OK(
      reader.ReadDouble(&cp->inspector.martingale.last_delta));
  VDRIFT_RETURN_NOT_OK(reader.ReadDouble(&cp->inspector.martingale.last_bet));
  VDRIFT_RETURN_NOT_OK(
      reader.ReadDoubleVec(&cp->inspector.martingale.history));
  VDRIFT_RETURN_NOT_OK(reader.ReadDoubleVec(&cp->calibration.pc_avg));
  VDRIFT_RETURN_NOT_OK(reader.ReadDoubleVec(&cp->calibration.sigma));
  VDRIFT_RETURN_NOT_OK(reader.ReadDouble(&cp->calibration.global_h));
  VDRIFT_RETURN_NOT_OK(reader.ReadU8(&flag));
  cp->calibrated = flag != 0;
  VDRIFT_RETURN_NOT_OK(reader.ReadI64(&cp->stream_cursor));
  VDRIFT_RETURN_NOT_OK(reader.ReadI64(&cp->frames));
  VDRIFT_RETURN_NOT_OK(reader.ReadI32(&cp->drifts_detected));
  VDRIFT_RETURN_NOT_OK(reader.ReadI32(&cp->new_models_trained));
  VDRIFT_RETURN_NOT_OK(reader.ReadI64Vec(&cp->drift_frames));
  VDRIFT_RETURN_NOT_OK(reader.ReadU32(&n));
  cp->selections.resize(n);
  for (uint32_t i = 0; i < n; ++i) {
    VDRIFT_RETURN_NOT_OK(reader.ReadString(&cp->selections[i]));
  }
  VDRIFT_RETURN_NOT_OK(reader.ReadI64(&cp->selection_invocations));
  VDRIFT_RETURN_NOT_OK(reader.ReadU32(&n));
  for (uint32_t i = 0; i < n; ++i) {
    int32_t id = 0;
    SequenceAccuracy acc;
    VDRIFT_RETURN_NOT_OK(reader.ReadI32(&id));
    VDRIFT_RETURN_NOT_OK(reader.ReadI64(&acc.count_correct));
    VDRIFT_RETURN_NOT_OK(reader.ReadI64(&acc.count_total));
    VDRIFT_RETURN_NOT_OK(reader.ReadI64(&acc.predicate_correct));
    VDRIFT_RETURN_NOT_OK(reader.ReadI64(&acc.predicate_total));
    VDRIFT_RETURN_NOT_OK(reader.ReadI64(&acc.invocations));
    cp->per_sequence[id] = acc;
  }
  VDRIFT_RETURN_NOT_OK(reader.ReadI64(&cp->degradation.frames_dropped));
  VDRIFT_RETURN_NOT_OK(reader.ReadI64(&cp->degradation.selector_failures));
  VDRIFT_RETURN_NOT_OK(reader.ReadI64(&cp->degradation.selector_retries));
  VDRIFT_RETURN_NOT_OK(reader.ReadI64(&cp->degradation.incumbent_fallbacks));
  VDRIFT_RETURN_NOT_OK(reader.ReadI64(&cp->degradation.annotator_deferrals));
  VDRIFT_RETURN_NOT_OK(reader.ReadI64(&cp->degradation.annotator_errors));
  VDRIFT_RETURN_NOT_OK(reader.ReadI64(&cp->degradation.recalibrate_failures));
  VDRIFT_RETURN_NOT_OK(reader.ReadI64(&cp->degradation.checkpoint_failures));
  VDRIFT_RETURN_NOT_OK(reader.ReadU8(&flag));
  cp->degradation.drift_oblivious = flag != 0;
  // --- v2 fields ---
  VDRIFT_RETURN_NOT_OK(reader.ReadI32(&cp->last_sequence_id));
  VDRIFT_RETURN_NOT_OK(reader.ReadI64(&cp->frames_since_sequence_change));
  VDRIFT_RETURN_NOT_OK(reader.ReadDouble(&cp->last_p_value));
  VDRIFT_RETURN_NOT_OK(reader.ReadI64Vec(&cp->detect_lags));
  VDRIFT_RETURN_NOT_OK(reader.ReadU8(&cp->recovery_phase));
  if (cp->recovery_phase > 2) {
    return Status::DataLoss("checkpoint recovery phase out of range: " +
                            std::to_string(cp->recovery_phase));
  }
  VDRIFT_RETURN_NOT_OK(reader.ReadI32(&cp->recovery_target));
  VDRIFT_RETURN_NOT_OK(reader.ReadI32(&cp->recovery_backoff));
  VDRIFT_RETURN_NOT_OK(reader.ReadI32(&cp->recovery_attempt));
  VDRIFT_RETURN_NOT_OK(reader.ReadU8(&flag));
  cp->recovery_initial_collect = flag != 0;
  VDRIFT_RETURN_NOT_OK(DecodeFrameVec(&reader, &cp->recovery_window));
  VDRIFT_RETURN_NOT_OK(DecodeFrameVec(&reader, &cp->recovery_training));
  if (reader.remaining() != 0) {
    return Status::DataLoss("checkpoint payload has " +
                            std::to_string(reader.remaining()) +
                            " trailing bytes");
  }
  return Status::OK();
}

}  // namespace

std::string EncodeCheckpoint(const PipelineCheckpoint& checkpoint) {
  std::string payload = EncodePayload(checkpoint);
  BinaryWriter writer;
  uint64_t magic = 0;
  std::memcpy(&magic, kMagic, sizeof(magic));
  writer.WriteU64(magic);
  writer.WriteU32(kVersion);
  writer.WriteU64(payload.size());
  std::string bytes = std::move(writer).TakeBytes();
  bytes += payload;
  uint32_t crc = Crc32(payload.data(), payload.size());
  bytes.append(reinterpret_cast<const char*>(&crc), sizeof(crc));
  return bytes;
}

Result<PipelineCheckpoint> DecodeCheckpoint(const std::string& bytes) {
  if (bytes.size() < kEnvelopeBytes) {
    return Status::DataLoss("checkpoint too small: " +
                            std::to_string(bytes.size()) + " bytes");
  }
  if (std::memcmp(bytes.data(), kMagic, sizeof(kMagic)) != 0) {
    return Status::DataLoss("checkpoint magic mismatch");
  }
  uint32_t version = 0;
  uint64_t payload_size = 0;
  std::memcpy(&version, bytes.data() + sizeof(kMagic), sizeof(version));
  std::memcpy(&payload_size, bytes.data() + sizeof(kMagic) + sizeof(version),
              sizeof(payload_size));
  if (version != kVersion) {
    return Status::DataLoss("checkpoint version " + std::to_string(version) +
                            " not supported (want " +
                            std::to_string(kVersion) + ")");
  }
  if (payload_size != bytes.size() - kEnvelopeBytes) {
    return Status::DataLoss(
        "checkpoint payload length mismatch: header says " +
        std::to_string(payload_size) + ", file holds " +
        std::to_string(bytes.size() - kEnvelopeBytes));
  }
  const char* payload_begin = bytes.data() + sizeof(kMagic) + 4 + 8;
  uint32_t stored_crc = 0;
  std::memcpy(&stored_crc, payload_begin + payload_size, sizeof(stored_crc));
  uint32_t actual_crc = Crc32(payload_begin, payload_size);
  if (stored_crc != actual_crc) {
    return Status::DataLoss("checkpoint CRC mismatch: stored " +
                            std::to_string(stored_crc) + ", computed " +
                            std::to_string(actual_crc));
  }
  std::string payload(payload_begin, payload_size);
  PipelineCheckpoint checkpoint;
  VDRIFT_RETURN_NOT_OK(DecodePayload(payload, &checkpoint));
  return checkpoint;
}

Status WriteCheckpointFile(const PipelineCheckpoint& checkpoint,
                           const std::string& path,
                           fault::FaultInjector* injector) {
  if (injector != nullptr &&
      injector->ShouldInject(fault::FaultKind::kIoFail)) {
    return Status::IoError("injected: checkpoint write failed");
  }
  std::string bytes = EncodeCheckpoint(checkpoint);
  if (injector != nullptr &&
      injector->ShouldInject(fault::FaultKind::kCheckpointCorrupt)) {
    // Half the injections flip a bit (silent media corruption), half tear
    // the buffer (power loss mid-write); both must be caught by Resume.
    if (injector->count(fault::FaultKind::kCheckpointCorrupt) % 2 == 1) {
      injector->CorruptBytes(&bytes);
    } else {
      injector->TearBytes(&bytes);
    }
  }
  return AtomicWriteFile(path, bytes);
}

Result<PipelineCheckpoint> ReadCheckpointFile(const std::string& path,
                                              fault::FaultInjector* injector) {
  if (injector != nullptr &&
      injector->ShouldInject(fault::FaultKind::kIoFail)) {
    return Status::IoError("injected: checkpoint read failed");
  }
  VDRIFT_ASSIGN_OR_RETURN(std::string bytes, ReadFileToString(path));
  return DecodeCheckpoint(bytes);
}

}  // namespace vdrift::pipeline
