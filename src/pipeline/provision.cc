#include "pipeline/provision.h"

#include <algorithm>
#include <memory>

#include "core/ensemble.h"
#include "detect/annotator.h"
#include "video/stream.h"

namespace vdrift::pipeline {

ProvisionOptions DefaultProvisionOptions() {
  ProvisionOptions options;
  options.profile.vae.image_size = 32;
  options.profile.vae.latent_dim = 8;
  options.profile.vae.base_filters = 4;
  options.profile.trainer.epochs = 12;
  options.profile.sigma_size = 200;
  options.profile.k = 5;
  options.count_classes = 8;
  options.ensemble_size = 3;
  options.classifier_filters = 8;
  options.classifier_train.epochs = 8;
  return options;
}

Result<select::ModelEntry> ProvisionModel(
    const std::string& name, const std::vector<video::Frame>& frames,
    const ProvisionOptions& options, stats::Rng* rng) {
  if (frames.empty()) {
    return Status::InvalidArgument("ProvisionModel needs frames");
  }
  if (options.ensemble_size < 1) {
    return Status::InvalidArgument("ensemble_size must be >= 1");
  }
  std::vector<tensor::Tensor> pixels = video::PixelsOf(frames);

  // (a) Distribution profile: VAE + Sigma_Ti + A_i.
  VDRIFT_ASSIGN_OR_RETURN(
      auto profile,
      conformal::DistributionProfile::Build(name, pixels, options.profile,
                                            rng));

  // Oracle labels (Mask R-CNN's role).
  std::vector<int> count_labels;
  std::vector<int> predicate_labels;
  count_labels.reserve(frames.size());
  predicate_labels.reserve(frames.size());
  for (const video::Frame& f : frames) {
    count_labels.push_back(detect::CountLabel(f.truth, options.count_classes));
    predicate_labels.push_back(detect::PredicateLabel(f.truth));
  }

  // (b) Deep ensemble of L count classifiers: independent random inits,
  // each trained on a fresh shuffle of the full window (§5.2.2).
  detect::ClassifierConfig clf_config;
  clf_config.image_size = options.profile.vae.image_size;
  clf_config.channels = options.profile.vae.channels;
  clf_config.num_classes = options.count_classes;
  clf_config.base_filters = options.classifier_filters;
  std::vector<std::shared_ptr<nn::ProbabilisticClassifier>> members;
  for (int l = 0; l < options.ensemble_size; ++l) {
    auto member = std::make_shared<detect::ImageClassifier>(clf_config, rng);
    VDRIFT_RETURN_NOT_OK(
        member->Train(pixels, count_labels, options.classifier_train, rng)
            .status());
    members.push_back(std::move(member));
  }
  // (c) The deployed count-query model doubles as ensemble member 0 (they
  // solve the same task); the predicate model is trained separately.
  std::shared_ptr<nn::ProbabilisticClassifier> count_model = members.front();
  VDRIFT_ASSIGN_OR_RETURN(select::DeepEnsemble ensemble,
                          select::DeepEnsemble::Make(std::move(members)));

  std::shared_ptr<nn::ProbabilisticClassifier> predicate_model;
  if (options.train_predicate_model) {
    detect::ClassifierConfig pred_config = clf_config;
    pred_config.num_classes = 2;
    auto pred =
        std::make_shared<detect::ImageClassifier>(pred_config, rng);
    VDRIFT_RETURN_NOT_OK(
        pred->Train(pixels, predicate_labels, options.classifier_train, rng)
            .status());
    predicate_model = std::move(pred);
  }

  select::ModelEntry entry;
  entry.name = name;
  entry.profile = std::shared_ptr<conformal::DistributionProfile>(
      std::move(profile));
  entry.ensemble =
      std::make_shared<select::DeepEnsemble>(std::move(ensemble));
  entry.count_model = std::move(count_model);
  entry.predicate_model = std::move(predicate_model);
  return entry;
}

std::vector<select::LabeledFrame> MakeLabeledSample(
    const std::vector<video::Frame>& frames, int count_classes,
    int sample_size, stats::Rng* rng) {
  std::vector<select::LabeledFrame> sample;
  if (frames.empty()) return sample;
  sample.reserve(static_cast<size_t>(sample_size));
  for (int i = 0; i < sample_size; ++i) {
    const video::Frame& f = frames[static_cast<size_t>(
        rng->NextInt(0, static_cast<int>(frames.size()) - 1))];
    sample.push_back(
        {f.pixels, detect::CountLabel(f.truth, count_classes)});
  }
  return sample;
}

}  // namespace vdrift::pipeline
