#include "common/status.h"

namespace vdrift {

std::string_view StatusCodeToString(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "Invalid argument";
    case StatusCode::kNotFound:
      return "Not found";
    case StatusCode::kFailedPrecondition:
      return "Failed precondition";
    case StatusCode::kOutOfRange:
      return "Out of range";
    case StatusCode::kUnimplemented:
      return "Unimplemented";
    case StatusCode::kInternal:
      return "Internal";
    case StatusCode::kIoError:
      return "IO error";
    case StatusCode::kDataLoss:
      return "Data loss";
    case StatusCode::kDeadlineExceeded:
      return "Deadline exceeded";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out(StatusCodeToString(code_));
  out += ": ";
  out += message_;
  return out;
}

}  // namespace vdrift
