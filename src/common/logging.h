#ifndef VDRIFT_COMMON_LOGGING_H_
#define VDRIFT_COMMON_LOGGING_H_

#include <cstdlib>
#include <iostream>
#include <sstream>
#include <string>

#include "common/status.h"

namespace vdrift {

/// \brief Severity of a log line.
enum class LogLevel : int { kDebug = 0, kInfo = 1, kWarning = 2, kFatal = 3 };

/// Parses a level name ("debug"/"info"/"warning"/"fatal", case-insensitive,
/// or a bare digit 0-3). Returns false and leaves `level` untouched on
/// unknown names.
bool ParseLogLevel(const std::string& name, LogLevel* level);

namespace internal {

/// Minimum level that is actually emitted. Initialised from the
/// VDRIFT_LOG_LEVEL environment variable on first use (default kInfo),
/// settable via SetLogLevel; reads and writes are atomic, so threads may
/// log and adjust the level concurrently.
LogLevel GetLogLevel();

/// \brief Accumulates one log line and flushes to stderr on destruction.
///
/// Fatal messages abort the process after flushing.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  template <typename T>
  LogMessage& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

}  // namespace internal

/// Sets the global minimum log level (default kInfo).
void SetLogLevel(LogLevel level);

}  // namespace vdrift

#define VDRIFT_LOG_DEBUG \
  ::vdrift::internal::LogMessage(::vdrift::LogLevel::kDebug, __FILE__, __LINE__)
#define VDRIFT_LOG_INFO \
  ::vdrift::internal::LogMessage(::vdrift::LogLevel::kInfo, __FILE__, __LINE__)
#define VDRIFT_LOG_WARNING                                            \
  ::vdrift::internal::LogMessage(::vdrift::LogLevel::kWarning, __FILE__, \
                                 __LINE__)
#define VDRIFT_LOG_FATAL \
  ::vdrift::internal::LogMessage(::vdrift::LogLevel::kFatal, __FILE__, __LINE__)

/// Aborts with a message when `condition` is false. Always on (release and
/// debug): used for programmer-error invariants on non-hot paths.
#define VDRIFT_CHECK(condition)                                  \
  if (!(condition))                                              \
  VDRIFT_LOG_FATAL << "Check failed: " #condition " at " << __FILE__ << ":" \
                   << __LINE__ << " "

/// Aborts when a Status expression is not OK.
#define VDRIFT_CHECK_OK(expr)                                            \
  do {                                                                   \
    ::vdrift::Status _vdrift_check_status = (expr);                      \
    if (!_vdrift_check_status.ok()) {                                    \
      VDRIFT_LOG_FATAL << "Status not OK: "                              \
                       << _vdrift_check_status.ToString();               \
    }                                                                    \
  } while (false)

/// Debug-only check, compiled out in NDEBUG builds; used on hot paths.
#ifdef NDEBUG
#define VDRIFT_DCHECK(condition) \
  while (false) VDRIFT_CHECK(condition)
#else
#define VDRIFT_DCHECK(condition) VDRIFT_CHECK(condition)
#endif

#endif  // VDRIFT_COMMON_LOGGING_H_
