#include "common/binio.h"

#include <fcntl.h>
#include <unistd.h>

#include <array>
#include <cerrno>
#include <cstdio>
#include <fstream>
#include <sstream>

namespace vdrift {

namespace {

std::array<uint32_t, 256> MakeCrcTable() {
  std::array<uint32_t, 256> table{};
  for (uint32_t i = 0; i < 256; ++i) {
    uint32_t c = i;
    for (int k = 0; k < 8; ++k) {
      c = (c & 1u) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
    }
    table[i] = c;
  }
  return table;
}

}  // namespace

uint32_t Crc32(const void* data, size_t size, uint32_t seed) {
  static const std::array<uint32_t, 256> kTable = MakeCrcTable();
  const auto* bytes = static_cast<const unsigned char*>(data);
  uint32_t c = seed ^ 0xFFFFFFFFu;
  for (size_t i = 0; i < size; ++i) {
    c = kTable[(c ^ bytes[i]) & 0xFFu] ^ (c >> 8);
  }
  return c ^ 0xFFFFFFFFu;
}

void BinaryWriter::WriteString(const std::string& s) {
  WriteU64(static_cast<uint64_t>(s.size()));
  bytes_.append(s);
}

void BinaryWriter::WriteDoubleVec(const std::vector<double>& v) {
  WriteU64(static_cast<uint64_t>(v.size()));
  for (double d : v) WriteDouble(d);
}

void BinaryWriter::WriteFloatVec(const std::vector<float>& v) {
  WriteU64(static_cast<uint64_t>(v.size()));
  for (float f : v) WriteF32(f);
}

void BinaryWriter::WriteI64Vec(const std::vector<int64_t>& v) {
  WriteU64(static_cast<uint64_t>(v.size()));
  for (int64_t d : v) WriteI64(d);
}

Status BinaryReader::ReadString(std::string* s) {
  uint64_t size = 0;
  VDRIFT_RETURN_NOT_OK(ReadU64(&size));
  if (offset_ + size > bytes_.size()) {
    return Status::DataLoss("truncated string of declared length " +
                            std::to_string(size));
  }
  s->assign(bytes_.data() + offset_, size);
  offset_ += size;
  return Status::OK();
}

Status BinaryReader::ReadDoubleVec(std::vector<double>* v) {
  uint64_t size = 0;
  VDRIFT_RETURN_NOT_OK(ReadU64(&size));
  if (size > remaining() / sizeof(double)) {
    return Status::DataLoss("truncated double vector of declared length " +
                            std::to_string(size));
  }
  v->resize(size);
  for (uint64_t i = 0; i < size; ++i) {
    VDRIFT_RETURN_NOT_OK(ReadDouble(&(*v)[i]));
  }
  return Status::OK();
}

Status BinaryReader::ReadFloatVec(std::vector<float>* v) {
  uint64_t size = 0;
  VDRIFT_RETURN_NOT_OK(ReadU64(&size));
  if (size > remaining() / sizeof(float)) {
    return Status::DataLoss("truncated float vector of declared length " +
                            std::to_string(size));
  }
  v->resize(size);
  for (uint64_t i = 0; i < size; ++i) {
    VDRIFT_RETURN_NOT_OK(ReadF32(&(*v)[i]));
  }
  return Status::OK();
}

Status BinaryReader::ReadI64Vec(std::vector<int64_t>* v) {
  uint64_t size = 0;
  VDRIFT_RETURN_NOT_OK(ReadU64(&size));
  if (size > remaining() / sizeof(int64_t)) {
    return Status::DataLoss("truncated int64 vector of declared length " +
                            std::to_string(size));
  }
  v->resize(size);
  for (uint64_t i = 0; i < size; ++i) {
    VDRIFT_RETURN_NOT_OK(ReadI64(&(*v)[i]));
  }
  return Status::OK();
}

Status AtomicWriteFile(const std::string& path, const std::string& bytes) {
  const std::string tmp = path + ".tmp";
  int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) {
    return Status::IoError("cannot open '" + tmp + "' for writing");
  }
  size_t written = 0;
  while (written < bytes.size()) {
    ssize_t n = ::write(fd, bytes.data() + written, bytes.size() - written);
    if (n < 0) {
      if (errno == EINTR) continue;
      ::close(fd);
      std::remove(tmp.c_str());
      return Status::IoError("short write to '" + tmp + "'");
    }
    written += static_cast<size_t>(n);
  }
  // Durability, not just atomicity: the data must be on stable storage
  // BEFORE the rename publishes it, or a power cut can promote an empty
  // tmp file over a good checkpoint.
  if (::fsync(fd) != 0) {
    ::close(fd);
    std::remove(tmp.c_str());
    return Status::IoError("fsync failed on '" + tmp + "'");
  }
  if (::close(fd) != 0) {
    std::remove(tmp.c_str());
    return Status::IoError("close failed on '" + tmp + "'");
  }
  // vdrift-lint: allow(no-unchecked-rename): this IS the checked rename
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    return Status::IoError("cannot rename '" + tmp + "' to '" + path + "'");
  }
  // The rename is a directory mutation; fsync the parent so the new name
  // itself is durable. Best-effort on filesystems that refuse O_RDONLY
  // directory fds — the data fsync above already happened.
  size_t slash = path.find_last_of('/');
  const std::string dir = slash == std::string::npos
                              ? std::string(".")
                              : path.substr(0, slash == 0 ? 1 : slash);
  int dirfd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (dirfd >= 0) {
    if (::fsync(dirfd) != 0) {
      ::close(dirfd);
      return Status::IoError("fsync failed on directory '" + dir + "'");
    }
    ::close(dirfd);
  }
  return Status::OK();
}

Result<std::string> ReadFileToString(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return Status::IoError("cannot open '" + path + "' for reading");
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  if (in.bad()) {
    return Status::IoError("read failure on '" + path + "'");
  }
  return buffer.str();
}

}  // namespace vdrift
