#ifndef VDRIFT_COMMON_BINIO_H_
#define VDRIFT_COMMON_BINIO_H_

#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/status.h"

namespace vdrift {

/// CRC-32 (IEEE 802.3 polynomial, the zlib/PNG variant) of `size` bytes.
/// `seed` allows incremental computation: pass the previous return value.
uint32_t Crc32(const void* data, size_t size, uint32_t seed = 0);

/// \brief Appends little-endian POD values and length-prefixed blobs to a
/// byte buffer.
///
/// The writing half of the checkpoint codec: values are laid out in call
/// order with no alignment or padding, so the byte stream is identical
/// across platforms of the same endianness (we assume little-endian, as
/// every deployment target is).
class BinaryWriter {
 public:
  void WriteU8(uint8_t v) { Append(&v, sizeof(v)); }
  void WriteU32(uint32_t v) { Append(&v, sizeof(v)); }
  void WriteU64(uint64_t v) { Append(&v, sizeof(v)); }
  void WriteI32(int32_t v) { Append(&v, sizeof(v)); }
  void WriteI64(int64_t v) { Append(&v, sizeof(v)); }
  void WriteDouble(double v) { Append(&v, sizeof(v)); }
  void WriteF32(float v) { Append(&v, sizeof(v)); }
  void WriteString(const std::string& s);
  void WriteDoubleVec(const std::vector<double>& v);
  void WriteFloatVec(const std::vector<float>& v);
  void WriteI64Vec(const std::vector<int64_t>& v);

  const std::string& bytes() const { return bytes_; }
  std::string&& TakeBytes() { return std::move(bytes_); }

 private:
  void Append(const void* data, size_t size) {
    bytes_.append(static_cast<const char*>(data), size);
  }

  std::string bytes_;
};

/// \brief Bounds-checked reader over a byte buffer written by BinaryWriter.
///
/// Every Read* returns kDataLoss on truncation instead of walking off the
/// buffer — a torn checkpoint surfaces as a clean Status, never as UB.
class BinaryReader {
 public:
  explicit BinaryReader(const std::string& bytes) : bytes_(bytes) {}

  [[nodiscard]] Status ReadU8(uint8_t* v) { return Extract(v, sizeof(*v)); }
  [[nodiscard]] Status ReadU32(uint32_t* v) { return Extract(v, sizeof(*v)); }
  [[nodiscard]] Status ReadU64(uint64_t* v) { return Extract(v, sizeof(*v)); }
  [[nodiscard]] Status ReadI32(int32_t* v) { return Extract(v, sizeof(*v)); }
  [[nodiscard]] Status ReadI64(int64_t* v) { return Extract(v, sizeof(*v)); }
  [[nodiscard]] Status ReadDouble(double* v) { return Extract(v, sizeof(*v)); }
  [[nodiscard]] Status ReadF32(float* v) { return Extract(v, sizeof(*v)); }
  [[nodiscard]] Status ReadString(std::string* s);
  [[nodiscard]] Status ReadDoubleVec(std::vector<double>* v);
  [[nodiscard]] Status ReadFloatVec(std::vector<float>* v);
  [[nodiscard]] Status ReadI64Vec(std::vector<int64_t>* v);

  /// Bytes not yet consumed.
  size_t remaining() const { return bytes_.size() - offset_; }

 private:
  [[nodiscard]] Status Extract(void* out, size_t size) {
    if (offset_ + size > bytes_.size()) {
      return Status::DataLoss("truncated buffer: need " +
                              std::to_string(size) + " bytes at offset " +
                              std::to_string(offset_) + ", have " +
                              std::to_string(bytes_.size() - offset_));
    }
    std::memcpy(out, bytes_.data() + offset_, size);
    offset_ += size;
    return Status::OK();
  }

  const std::string& bytes_;
  size_t offset_ = 0;
};

/// Writes `bytes` to `path` atomically AND durably: the data lands in
/// `path + ".tmp"` first, is fsync'd, renamed over `path` (rename(2)
/// within one filesystem is atomic), and finally the parent directory is
/// fsync'd so the rename itself survives a power cut. A crash at any point
/// leaves either the old file or the complete new one under the final
/// name — never a half-written or vanished file.
[[nodiscard]] Status AtomicWriteFile(const std::string& path, const std::string& bytes);

/// Reads a whole file into a string. kIoError when it cannot be opened.
[[nodiscard]] Result<std::string> ReadFileToString(const std::string& path);

}  // namespace vdrift

#endif  // VDRIFT_COMMON_BINIO_H_
