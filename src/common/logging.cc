#include "common/logging.h"

#include <atomic>
#include <cctype>
#include <cstdio>

namespace vdrift {
namespace {

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarning:
      return "WARN";
    case LogLevel::kFatal:
      return "FATAL";
  }
  return "?";
}

LogLevel LevelFromEnv() {
  LogLevel level = LogLevel::kInfo;
  // vdrift-lint: allow(no-ambient-nondeterminism): documented log-level knob
  const char* env = std::getenv("VDRIFT_LOG_LEVEL");
  if (env != nullptr) ParseLogLevel(env, &level);
  return level;
}

// Lazily env-initialised; atomic so logging threads never race SetLogLevel.
std::atomic<int>& LevelStore() {
  static std::atomic<int> level{static_cast<int>(LevelFromEnv())};
  return level;
}

}  // namespace

bool ParseLogLevel(const std::string& name, LogLevel* level) {
  std::string lower;
  lower.reserve(name.size());
  for (char c : name) {
    lower.push_back(
        static_cast<char>(std::tolower(static_cast<unsigned char>(c))));
  }
  if (lower == "debug" || lower == "0") {
    *level = LogLevel::kDebug;
  } else if (lower == "info" || lower == "1") {
    *level = LogLevel::kInfo;
  } else if (lower == "warning" || lower == "warn" || lower == "2") {
    *level = LogLevel::kWarning;
  } else if (lower == "fatal" || lower == "3") {
    *level = LogLevel::kFatal;
  } else {
    return false;
  }
  return true;
}

void SetLogLevel(LogLevel level) {
  LevelStore().store(static_cast<int>(level), std::memory_order_relaxed);
}

namespace internal {

LogLevel GetLogLevel() {
  return static_cast<LogLevel>(
      LevelStore().load(std::memory_order_relaxed));
}

LogMessage::LogMessage(LogLevel level, const char* file, int line)
    : level_(level) {
  stream_ << "[" << LevelName(level) << " " << file << ":" << line << "] ";
}

LogMessage::~LogMessage() {
  if (level_ >= GetLogLevel() || level_ == LogLevel::kFatal) {
    // One fwrite per line: concurrent log lines interleave whole, never
    // mid-line (POSIX stdio streams lock around each call).
    stream_ << '\n';
    std::string line = stream_.str();
    std::fwrite(line.data(), 1, line.size(), stderr);
    std::fflush(stderr);
  }
  if (level_ == LogLevel::kFatal) {
    std::abort();
  }
}

}  // namespace internal
}  // namespace vdrift
