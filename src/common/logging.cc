#include "common/logging.h"

namespace vdrift {
namespace {

LogLevel g_log_level = LogLevel::kInfo;

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarning:
      return "WARN";
    case LogLevel::kFatal:
      return "FATAL";
  }
  return "?";
}

}  // namespace

void SetLogLevel(LogLevel level) { g_log_level = level; }

namespace internal {

LogLevel GetLogLevel() { return g_log_level; }

LogMessage::LogMessage(LogLevel level, const char* file, int line)
    : level_(level) {
  stream_ << "[" << LevelName(level) << " " << file << ":" << line << "] ";
}

LogMessage::~LogMessage() {
  if (level_ >= GetLogLevel() || level_ == LogLevel::kFatal) {
    std::cerr << stream_.str() << std::endl;
  }
  if (level_ == LogLevel::kFatal) {
    std::abort();
  }
}

}  // namespace internal
}  // namespace vdrift
