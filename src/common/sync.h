#ifndef VDRIFT_COMMON_SYNC_H_
#define VDRIFT_COMMON_SYNC_H_

// vdrift-lint: allow-file(no-raw-mutex): this header IS the sanctioned
// wrapper over <mutex>/<condition_variable>; everything else must go
// through it so Clang Thread Safety Analysis sees every lock.

#include <condition_variable>
#include <mutex>

/// \file
/// Clang Thread Safety Analysis (TSA) capability wrappers.
///
/// Every mutex in the codebase is a `vdrift::Mutex`, every guarded field
/// carries `VDRIFT_GUARDED_BY(mu_)`, and every function with a locking
/// contract is annotated with `VDRIFT_REQUIRES` / `VDRIFT_ACQUIRE` /
/// `VDRIFT_RELEASE`. Under clang the build runs with
/// `-Werror=thread-safety`, so "forgot to take the lock" and "touched a
/// guarded field from the wrong side" are compile errors, not TSan
/// findings three CI stages later. Under GCC the macros expand to nothing
/// and the wrappers are zero-cost shims over the std primitives.
///
/// The annotation vocabulary follows the LLVM reference header
/// (clang.llvm.org/docs/ThreadSafetyAnalysis.html); only the subset the
/// repo uses is defined, so a new annotation is a deliberate addition.

#if defined(__clang__)
#define VDRIFT_THREAD_ANNOTATION(x) __attribute__((x))
#else
#define VDRIFT_THREAD_ANNOTATION(x)  // no-op on GCC and others
#endif

/// Marks a type as a lockable capability ("mutex" in diagnostics).
#define VDRIFT_CAPABILITY(x) VDRIFT_THREAD_ANNOTATION(capability(x))
/// Marks an RAII type that acquires on construction, releases on scope exit.
#define VDRIFT_SCOPED_CAPABILITY VDRIFT_THREAD_ANNOTATION(scoped_lockable)
/// The field may only be touched while holding `x`.
#define VDRIFT_GUARDED_BY(x) VDRIFT_THREAD_ANNOTATION(guarded_by(x))
/// The pointee may only be touched while holding `x`.
#define VDRIFT_PT_GUARDED_BY(x) VDRIFT_THREAD_ANNOTATION(pt_guarded_by(x))
/// The function acquires the listed capabilities (held on return).
#define VDRIFT_ACQUIRE(...) \
  VDRIFT_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))
/// The function releases the listed capabilities.
#define VDRIFT_RELEASE(...) \
  VDRIFT_THREAD_ANNOTATION(release_capability(__VA_ARGS__))
/// The caller must hold the listed capabilities across the call.
#define VDRIFT_REQUIRES(...) \
  VDRIFT_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))
/// The caller must NOT hold the listed capabilities (deadlock guard).
#define VDRIFT_EXCLUDES(...) \
  VDRIFT_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))
/// The function acquires the capability iff it returns `result`.
#define VDRIFT_TRY_ACQUIRE(...) \
  VDRIFT_THREAD_ANNOTATION(try_acquire_capability(__VA_ARGS__))
/// Escape hatch; every use needs a comment explaining why TSA cannot see
/// the invariant.
#define VDRIFT_NO_THREAD_SAFETY_ANALYSIS \
  VDRIFT_THREAD_ANNOTATION(no_thread_safety_analysis)

namespace vdrift {

class CondVar;

/// \brief TSA-visible exclusive mutex (wraps std::mutex).
///
/// Prefer `MutexLock` for scope-bound sections; call Lock()/Unlock()
/// directly only where the critical section cannot be a lexical scope.
class VDRIFT_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void Lock() VDRIFT_ACQUIRE() { mu_.lock(); }
  void Unlock() VDRIFT_RELEASE() { mu_.unlock(); }
  bool TryLock() VDRIFT_TRY_ACQUIRE(true) { return mu_.try_lock(); }

 private:
  friend class CondVar;  // Wait() needs the raw std::mutex to sleep on.
  std::mutex mu_;
};

/// \brief RAII lock over a Mutex (the std::lock_guard counterpart).
class VDRIFT_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex* mu) VDRIFT_ACQUIRE(mu) : mu_(mu) { mu_->Lock(); }
  ~MutexLock() VDRIFT_RELEASE() { mu_->Unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex* const mu_;
};

/// \brief Condition variable paired with Mutex.
///
/// Wait() atomically releases the caller-held Mutex while sleeping and
/// reacquires it before returning — annotated REQUIRES so TSA verifies the
/// caller actually holds it. Use an explicit `while (!condition) Wait(...)`
/// loop rather than a predicate lambda: TSA analyzes lambda bodies as
/// separate functions and cannot see that the surrounding lock is held.
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  /// Blocks until notified. Spurious wakeups possible; loop on the
  /// condition.
  void Wait(Mutex* mu) VDRIFT_REQUIRES(mu) {
    // Adopt the already-held std::mutex so std::condition_variable can
    // release/reacquire it; release() hands ownership back to the caller's
    // MutexLock without a second unlock.
    std::unique_lock<std::mutex> lock(mu->mu_, std::adopt_lock);
    cv_.wait(lock);
    lock.release();
  }

  void NotifyOne() { cv_.notify_one(); }
  void NotifyAll() { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
};

}  // namespace vdrift

#endif  // VDRIFT_COMMON_SYNC_H_
