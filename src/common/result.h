#ifndef VDRIFT_COMMON_RESULT_H_
#define VDRIFT_COMMON_RESULT_H_

#include <cstdlib>
#include <iostream>
#include <utility>
#include <variant>

#include "common/status.h"

namespace vdrift {

/// \brief Holds either a value of type T or an error Status.
///
/// The library's counterpart to arrow::Result. Use VDRIFT_ASSIGN_OR_RETURN
/// to unwrap in Status-returning code, or ValueOrDie() in tests and
/// examples where an error is a programming bug.
///
/// [[nodiscard]] at class scope: an ignored Result is an ignored error
/// (see Status; enforced by the compiler and vdrift-lint).
template <typename T>
class [[nodiscard]] Result {
 public:
  /// Constructs from a value (implicit so functions can `return value;`).
  Result(T value) : payload_(std::move(value)) {}  // NOLINT(runtime/explicit)
  /// Constructs from an error status (implicit so functions can
  /// `return Status::...;`). It is a bug to pass an OK status.
  Result(Status status) : payload_(std::move(status)) {  // NOLINT
    if (std::get<Status>(payload_).ok()) {
      std::cerr << "Result constructed from OK status" << std::endl;
      std::abort();
    }
  }

  Result(const Result&) = default;
  Result& operator=(const Result&) = default;
  Result(Result&&) = default;
  Result& operator=(Result&&) = default;

  /// True iff a value is held.
  bool ok() const { return std::holds_alternative<T>(payload_); }

  /// The error status; Status::OK() when a value is held.
  Status status() const {
    if (ok()) return Status::OK();
    return std::get<Status>(payload_);
  }

  /// Borrow the held value. Precondition: ok().
  const T& value() const& { return std::get<T>(payload_); }
  /// Mutable access to the held value. Precondition: ok().
  T& value() & { return std::get<T>(payload_); }
  /// Move the held value out. Precondition: ok().
  T&& value() && { return std::get<T>(std::move(payload_)); }

  /// Returns the value or aborts with the error message. For tests,
  /// examples, and benches where failure is a bug.
  T ValueOrDie() && {
    if (!ok()) {
      std::cerr << "Result::ValueOrDie on error: " << status().ToString()
                << std::endl;
      std::abort();
    }
    return std::get<T>(std::move(payload_));
  }

 private:
  std::variant<T, Status> payload_;
};

}  // namespace vdrift

/// Propagates a non-OK Status to the caller.
#define VDRIFT_RETURN_NOT_OK(expr)            \
  do {                                        \
    ::vdrift::Status _vdrift_status = (expr); \
    if (!_vdrift_status.ok()) {               \
      return _vdrift_status;                  \
    }                                         \
  } while (false)

#define VDRIFT_CONCAT_IMPL(a, b) a##b
#define VDRIFT_CONCAT(a, b) VDRIFT_CONCAT_IMPL(a, b)

/// Evaluates a Result-returning expression; on error propagates the Status,
/// otherwise moves the value into `lhs` (which may be a declaration).
#define VDRIFT_ASSIGN_OR_RETURN(lhs, rexpr)                           \
  VDRIFT_ASSIGN_OR_RETURN_IMPL(VDRIFT_CONCAT(_vdrift_result, __LINE__), lhs, \
                               rexpr)

#define VDRIFT_ASSIGN_OR_RETURN_IMPL(result_name, lhs, rexpr) \
  auto result_name = (rexpr);                                 \
  if (!result_name.ok()) {                                    \
    return result_name.status();                              \
  }                                                           \
  lhs = std::move(result_name).value()

#endif  // VDRIFT_COMMON_RESULT_H_
