#ifndef VDRIFT_COMMON_STATUS_H_
#define VDRIFT_COMMON_STATUS_H_

#include <string>
#include <string_view>
#include <utility>

namespace vdrift {

/// \brief Error category carried by a Status.
///
/// Modeled after the Arrow / RocksDB status idiom: core library code never
/// throws; fallible operations return a Status (or a Result<T>, see
/// result.h) and callers propagate with VDRIFT_RETURN_NOT_OK.
enum class StatusCode : int {
  kOk = 0,
  kInvalidArgument = 1,
  kNotFound = 2,
  kFailedPrecondition = 3,
  kOutOfRange = 4,
  kUnimplemented = 5,
  kInternal = 6,
  kIoError = 7,
  /// Stored state is unreadable or failed integrity checks (bad magic,
  /// version mismatch, CRC failure, truncation). Unlike kIoError the bytes
  /// were read fine — they are wrong. Recoverable by cold-start.
  kDataLoss = 8,
  /// An operation overran its deadline (e.g. annotator latency budget).
  kDeadlineExceeded = 9,
};

/// \brief Returns a human-readable name for a StatusCode ("OK",
/// "Invalid argument", ...).
std::string_view StatusCodeToString(StatusCode code);

/// \brief Outcome of a fallible operation: a code plus an optional message.
///
/// A default-constructed Status is OK. Statuses are cheap to copy for the OK
/// case (no allocation) and carry a message only on error.
///
/// The class itself is [[nodiscard]]: every function returning a Status by
/// value makes an ignored return a compiler warning (and a vdrift-lint
/// `nodiscard-status` finding), so errors cannot be dropped silently.
class [[nodiscard]] Status {
 public:
  /// Constructs an OK status.
  Status() = default;

  /// Constructs a status with the given code and message.
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  Status(const Status&) = default;
  Status& operator=(const Status&) = default;
  Status(Status&&) = default;
  Status& operator=(Status&&) = default;

  /// Factory for an OK status.
  static Status OK() { return Status(); }
  /// Factory for an InvalidArgument error.
  static Status InvalidArgument(std::string message) {
    return Status(StatusCode::kInvalidArgument, std::move(message));
  }
  /// Factory for a NotFound error.
  static Status NotFound(std::string message) {
    return Status(StatusCode::kNotFound, std::move(message));
  }
  /// Factory for a FailedPrecondition error.
  static Status FailedPrecondition(std::string message) {
    return Status(StatusCode::kFailedPrecondition, std::move(message));
  }
  /// Factory for an OutOfRange error.
  static Status OutOfRange(std::string message) {
    return Status(StatusCode::kOutOfRange, std::move(message));
  }
  /// Factory for an Unimplemented error.
  static Status Unimplemented(std::string message) {
    return Status(StatusCode::kUnimplemented, std::move(message));
  }
  /// Factory for an Internal error.
  static Status Internal(std::string message) {
    return Status(StatusCode::kInternal, std::move(message));
  }
  /// Factory for an IoError.
  static Status IoError(std::string message) {
    return Status(StatusCode::kIoError, std::move(message));
  }
  /// Factory for a DataLoss error.
  static Status DataLoss(std::string message) {
    return Status(StatusCode::kDataLoss, std::move(message));
  }
  /// Factory for a DeadlineExceeded error.
  static Status DeadlineExceeded(std::string message) {
    return Status(StatusCode::kDeadlineExceeded, std::move(message));
  }

  /// True iff the status is OK.
  bool ok() const { return code_ == StatusCode::kOk; }
  /// The status code.
  StatusCode code() const { return code_; }
  /// The error message (empty for OK).
  const std::string& message() const { return message_; }

  /// Renders "OK" or "<code name>: <message>".
  std::string ToString() const;

  bool operator==(const Status& other) const {
    return code_ == other.code_ && message_ == other.message_;
  }

 private:
  StatusCode code_ = StatusCode::kOk;
  std::string message_;
};

}  // namespace vdrift

#endif  // VDRIFT_COMMON_STATUS_H_
