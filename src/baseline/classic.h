#ifndef VDRIFT_BASELINE_CLASSIC_H_
#define VDRIFT_BASELINE_CLASSIC_H_

#include <deque>
#include <vector>

#include "common/result.h"

namespace vdrift::baseline {

/// \brief Windowed two-sample Kolmogorov-Smirnov drift detector.
///
/// The classic non-parametric test the paper's related work discusses
/// (§2): efficient in one dimension but without a practical
/// multi-dimensional form. We run it per scalar summary statistic of the
/// frame (any of video::GlobalFrameStats) against a fixed reference
/// sample, declaring drift when the KS p-value of the sliding window
/// drops below alpha. Provided as an ablation baseline for DI.
class KsWindowDetector {
 public:
  struct Config {
    int window = 32;       ///< Sliding window of recent observations.
    double alpha = 1e-3;   ///< Significance level of the KS test.
    int min_window = 16;   ///< Observations required before testing.
  };

  /// `reference` is the training sample of the monitored statistic.
  static Result<KsWindowDetector> Make(std::vector<double> reference,
                                       const Config& config);

  /// Feeds one observation; returns true when drift is declared.
  bool Observe(double value);

  /// The most recent KS p-value (1 before enough data).
  double last_p_value() const { return last_p_; }

  /// Clears the sliding window.
  void Reset();

 private:
  KsWindowDetector(std::vector<double> reference, const Config& config)
      : reference_(std::move(reference)), config_(config) {}

  std::vector<double> reference_;
  Config config_;
  std::deque<double> window_;
  double last_p_ = 1.0;
};

/// \brief Page-Hinkley change detector (control-chart family, §2).
///
/// Tracks the cumulative deviation of a scalar statistic from its running
/// mean; drift is declared when the deviation exceeds `lambda` after at
/// least `min_observations`. The parametric control-chart approach the
/// paper contrasts with: simple and cheap, but tuned to mean shifts of a
/// single statistic and blind to richer distribution changes.
class PageHinkleyDetector {
 public:
  struct Config {
    double delta = 0.005;       ///< Tolerated drift magnitude.
    double lambda = 1.0;        ///< Detection threshold.
    int min_observations = 16;  ///< Warm-up length.
  };

  explicit PageHinkleyDetector(const Config& config) : config_(config) {}

  /// Feeds one observation; returns true when drift is declared.
  bool Observe(double value);

  /// Current cumulative statistic (max of upward/downward tests).
  double statistic() const;

  void Reset();

 private:
  Config config_;
  int64_t count_ = 0;
  double mean_ = 0.0;
  double cum_up_ = 0.0;    // m_T for upward shifts
  double min_up_ = 0.0;
  double cum_down_ = 0.0;  // for downward shifts
  double max_down_ = 0.0;
};

}  // namespace vdrift::baseline

#endif  // VDRIFT_BASELINE_CLASSIC_H_
