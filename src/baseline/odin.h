#ifndef VDRIFT_BASELINE_ODIN_H_
#define VDRIFT_BASELINE_ODIN_H_

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "common/result.h"

namespace vdrift::baseline {

/// \brief Configuration of the ODIN baseline, defaults per the paper's
/// description of [Suprem et al., VLDB 2020] in §6.
struct OdinConfig {
  /// Fraction Delta of member distances enclosed by a cluster's density
  /// band (paper: Delta = 0.5).
  double delta = 0.5;
  /// Temporary-cluster promotion rule: the cluster becomes permanent when
  /// the KL divergence of its distance distribution before vs. after
  /// adding a frame falls below this (paper: 0.007).
  double kl_threshold = 0.007;
  /// Minimum temporary-cluster population before promotion is considered
  /// (a fresh histogram is trivially stable).
  int min_temporary_size = 8;
  /// Bins of the per-cluster distance histogram used for the KL check.
  int histogram_bins = 16;
  /// Assignment slack: a frame is assigned to a permanent cluster when its
  /// centroid distance is at most `band_slack` x the band's upper edge.
  double band_slack = 1.0;
};

/// \brief One ODIN cluster: centroid, member distances, density band.
class OdinCluster {
 public:
  OdinCluster(int dim, const OdinConfig& config);

  /// Adds a member: updates the centroid (running mean), the member
  /// distance list, the density band quantiles, and the KL histogram.
  void Add(std::span<const float> latent);

  /// Euclidean distance from the current centroid.
  double DistanceTo(std::span<const float> latent) const;

  /// True when a frame at this centroid distance falls in the cluster's
  /// assignment range (within the density band's upper edge).
  bool Accepts(double distance) const;

  /// KL divergence of the distance histogram caused by hypothetically
  /// adding one more member at `distance` — the promotion statistic.
  double KlAfterAdding(double distance) const;

  /// Number of members.
  int size() const { return static_cast<int>(distances_.size()); }
  const std::vector<float>& centroid() const { return centroid_; }
  double band_lower() const { return band_lower_; }
  double band_upper() const { return band_upper_; }
  /// Model associated with this cluster (set at promotion/seed time).
  int model_index() const { return model_index_; }
  void set_model_index(int index) { model_index_ = index; }

 private:
  std::vector<double> Pmf() const;
  void RecomputeBand();

  OdinConfig config_;
  std::vector<float> centroid_;
  std::vector<double> distances_;  // member -> centroid distances
  double band_lower_ = 0.0;
  double band_upper_ = 0.0;
  double hist_range_ = 1.0;  // histogram covers [0, hist_range_)
  int model_index_ = -1;
};

/// \brief Per-frame outcome of ODIN-Detect/-Select.
struct OdinObservation {
  /// Permanent clusters the frame was assigned to (possibly several).
  std::vector<int> assigned_clusters;
  /// Models backing those clusters — the (ensemble) selection of
  /// ODIN-Select; deduplicated, equal weights.
  std::vector<int> models;
  /// True when the frame landed in the temporary cluster instead.
  bool in_temporary = false;
  /// True when this frame's arrival promoted the temporary cluster —
  /// ODIN's drift declaration.
  bool drift = false;
  /// Index of the newly-permanent cluster when drift is true.
  int promoted_cluster = -1;
};

/// \brief The ODIN baseline: clustering drift detection + per-frame model
/// selection, re-implemented from the paper's §6 description.
///
/// Contrast with DI/MS: ODIN touches *every* cluster on *every* frame
/// (distance + band bookkeeping), selects a model (or an ensemble) per
/// frame rather than once per drift, and declares drift only when a
/// temporary cluster stabilizes — which is why it trails DI on detection
/// latency and cost in the paper's evaluation.
class OdinDetect {
 public:
  OdinDetect(const OdinConfig& config, int dim);

  /// Seeds a permanent cluster from a model's training latents.
  int AddPermanentCluster(const std::vector<std::vector<float>>& latents,
                          int model_index);

  /// Processes one frame latent.
  OdinObservation Observe(std::span<const float> latent);

  /// Permanent cluster count.
  int num_clusters() const { return static_cast<int>(clusters_.size()); }
  const OdinCluster& cluster(int i) const { return clusters_[static_cast<size_t>(i)]; }
  /// Model index that will be used for the next promoted cluster.
  void set_next_model_index(int index) { next_model_index_ = index; }

 private:
  OdinConfig config_;
  int dim_;
  std::vector<OdinCluster> clusters_;
  std::unique_ptr<OdinCluster> temporary_;
  int next_model_index_ = -1;
};

}  // namespace vdrift::baseline

#endif  // VDRIFT_BASELINE_ODIN_H_
