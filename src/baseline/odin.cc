#include "baseline/odin.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"
#include "obs/metrics.h"
#include "obs/timer.h"
#include "stats/distance.h"
#include "stats/histogram.h"
#include "stats/moments.h"

namespace vdrift::baseline {

OdinCluster::OdinCluster(int dim, const OdinConfig& config)
    : config_(config), centroid_(static_cast<size_t>(dim), 0.0f) {}

void OdinCluster::Add(std::span<const float> latent) {
  VDRIFT_DCHECK(latent.size() == centroid_.size());
  double n = static_cast<double>(distances_.size());
  // Running-mean centroid update.
  for (size_t i = 0; i < centroid_.size(); ++i) {
    centroid_[i] = static_cast<float>(
        (centroid_[i] * n + latent[i]) / (n + 1.0));
  }
  double dist = DistanceTo(latent);
  distances_.push_back(dist);
  hist_range_ = std::max(hist_range_, dist * 1.5 + 1e-9);
  RecomputeBand();
}

double OdinCluster::DistanceTo(std::span<const float> latent) const {
  return stats::Euclidean(latent, centroid_);
}

bool OdinCluster::Accepts(double distance) const {
  if (distances_.empty()) return false;
  return distance <= band_upper_ * config_.band_slack;
}

void OdinCluster::RecomputeBand() {
  // The density band encloses the central `delta` fraction of member
  // distances: quantiles at (1 -/+ delta)/2.
  double lo_q = (1.0 - config_.delta) / 2.0;
  double hi_q = 1.0 - lo_q;
  band_lower_ = stats::Quantile(distances_, lo_q);
  band_upper_ = stats::Quantile(distances_, hi_q);
}

std::vector<double> OdinCluster::Pmf() const {
  stats::Histogram hist =
      stats::Histogram::Make(0.0, hist_range_, config_.histogram_bins)
          .ValueOrDie();
  for (double d : distances_) hist.Add(d);
  return hist.Pmf();
}

double OdinCluster::KlAfterAdding(double distance) const {
  if (distances_.empty()) return 1e9;
  std::vector<double> before = Pmf();
  stats::Histogram hist =
      stats::Histogram::Make(0.0, hist_range_, config_.histogram_bins)
          .ValueOrDie();
  for (double d : distances_) hist.Add(d);
  hist.Add(std::min(distance, hist_range_ * (1.0 - 1e-9)));
  return stats::KlDivergence(hist.Pmf(), before);
}

OdinDetect::OdinDetect(const OdinConfig& config, int dim)
    : config_(config), dim_(dim) {
  VDRIFT_CHECK(dim_ > 0);
}

int OdinDetect::AddPermanentCluster(
    const std::vector<std::vector<float>>& latents, int model_index) {
  VDRIFT_CHECK(!latents.empty());
  OdinCluster cluster(dim_, config_);
  for (const auto& z : latents) cluster.Add(z);
  cluster.set_model_index(model_index);
  clusters_.push_back(std::move(cluster));
  return static_cast<int>(clusters_.size()) - 1;
}

OdinObservation OdinDetect::Observe(std::span<const float> latent) {
  // Per-frame ODIN-Detect latency (post-encode): the all-clusters scan
  // plus band/KL bookkeeping that drives the Table 6 comparison. A span
  // so the flight recorder captures it on the timeline.
  obs::TraceSpan span(&obs::Global(), "vdrift.odin.observe_seconds");
  obs::Global().GetCounter("vdrift.odin.frames").Increment();
  OdinObservation observation;
  // Try every permanent cluster (this per-cluster scan is ODIN's per-frame
  // cost driver — §6.2.2 reports ~3.2 ms per cluster per frame).
  for (size_t c = 0; c < clusters_.size(); ++c) {
    double dist = clusters_[c].DistanceTo(latent);
    if (clusters_[c].Accepts(dist)) {
      observation.assigned_clusters.push_back(static_cast<int>(c));
    }
  }
  if (!observation.assigned_clusters.empty()) {
    for (int c : observation.assigned_clusters) {
      clusters_[static_cast<size_t>(c)].Add(latent);
      int model = clusters_[static_cast<size_t>(c)].model_index();
      if (std::find(observation.models.begin(), observation.models.end(),
                    model) == observation.models.end()) {
        observation.models.push_back(model);
      }
    }
    return observation;
  }
  // No permanent cluster takes the frame: temporary-cluster path.
  observation.in_temporary = true;
  if (temporary_ == nullptr) {
    temporary_ = std::make_unique<OdinCluster>(dim_, config_);
  }
  double kl = 1e9;
  if (temporary_->size() >= config_.min_temporary_size) {
    kl = temporary_->KlAfterAdding(temporary_->DistanceTo(latent));
  }
  temporary_->Add(latent);
  if (temporary_->size() > config_.min_temporary_size &&
      kl < config_.kl_threshold) {
    // The temporary cluster's distance distribution has stabilized:
    // promote it — ODIN's drift declaration.
    temporary_->set_model_index(next_model_index_);
    clusters_.push_back(std::move(*temporary_));
    temporary_.reset();
    observation.drift = true;
    observation.promoted_cluster = static_cast<int>(clusters_.size()) - 1;
    obs::Global().GetCounter("vdrift.odin.promotions").Increment();
  }
  return observation;
}

}  // namespace vdrift::baseline
