#include "baseline/classic.h"

#include <algorithm>

#include "stats/ks_test.h"

namespace vdrift::baseline {

Result<KsWindowDetector> KsWindowDetector::Make(std::vector<double> reference,
                                                const Config& config) {
  if (reference.size() < 8) {
    return Status::InvalidArgument("KS detector needs a reference sample");
  }
  if (config.window < config.min_window || config.min_window < 2) {
    return Status::InvalidArgument("bad KS window configuration");
  }
  if (config.alpha <= 0.0 || config.alpha >= 1.0) {
    return Status::InvalidArgument("alpha must be in (0,1)");
  }
  return KsWindowDetector(std::move(reference), config);
}

bool KsWindowDetector::Observe(double value) {
  window_.push_back(value);
  while (static_cast<int>(window_.size()) > config_.window) {
    window_.pop_front();
  }
  if (static_cast<int>(window_.size()) < config_.min_window) {
    last_p_ = 1.0;
    return false;
  }
  std::vector<double> current(window_.begin(), window_.end());
  stats::KsResult ks = stats::TwoSampleKs(reference_, current);
  last_p_ = ks.p_value;
  return last_p_ < config_.alpha;
}

void KsWindowDetector::Reset() {
  window_.clear();
  last_p_ = 1.0;
}

bool PageHinkleyDetector::Observe(double value) {
  ++count_;
  mean_ += (value - mean_) / static_cast<double>(count_);
  cum_up_ += value - mean_ - config_.delta;
  min_up_ = std::min(min_up_, cum_up_);
  cum_down_ += value - mean_ + config_.delta;
  max_down_ = std::max(max_down_, cum_down_);
  if (count_ < config_.min_observations) return false;
  return statistic() > config_.lambda;
}

double PageHinkleyDetector::statistic() const {
  return std::max(cum_up_ - min_up_, max_down_ - cum_down_);
}

void PageHinkleyDetector::Reset() {
  count_ = 0;
  mean_ = 0.0;
  cum_up_ = 0.0;
  min_up_ = 0.0;
  cum_down_ = 0.0;
  max_down_ = 0.0;
}

}  // namespace vdrift::baseline
